//! The graph regressor family: GCN, ChebNet, and ICNet.

use crate::aggregate::Aggregation;
use crate::batch::BatchedGraph;
use crate::graph::CircuitGraph;
use crate::pool_lease::PoolLease;
use std::fmt;
use std::sync::Arc;
use tensor::{init, CsrMatrix, Matrix, Segments, Tape, VarId};

/// Which graph operator (and hence which model of the paper) to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Kipf-Welling GCN on `D̂^-1/2 (A+I) D̂^-1/2`.
    Gcn,
    /// Chebyshev filters of order `k` on the scaled Laplacian.
    ChebNet {
        /// Polynomial order (number of hops per layer).
        k: usize,
    },
    /// The paper's model: raw adjacency (plus self-loops) instead of the
    /// Laplacian, avoiding the smoothness assumption.
    ICNet,
}

impl ModelKind {
    /// Precomputes this model's graph operator for a circuit graph.
    ///
    /// The ICNet operator is the raw self-looped adjacency scaled by the
    /// constant `1 / (avg_degree + 1)`. A uniform scalar rescale changes
    /// nothing the model can express (it is absorbed by the layer weights)
    /// but keeps two stacked convolutions numerically conditioned like the
    /// normalized operators of the baselines.
    pub fn operator(&self, graph: &CircuitGraph) -> CsrMatrix {
        match self {
            ModelKind::Gcn => graph.gcn_norm(),
            ModelKind::ChebNet { .. } => graph.scaled_laplacian(),
            ModelKind::ICNet => {
                let a = graph.adjacency(true);
                let n = a.rows().max(1);
                let scale = 1.0 / (a.nnz() as f64 / n as f64);
                let uniform = vec![scale; n];
                a.scale_rows(&uniform)
            }
        }
    }

    /// Table label used by the experiment harness.
    pub fn label(&self) -> &'static str {
        match self {
            ModelKind::Gcn => "GCN",
            ModelKind::ChebNet { .. } => "ChebNet",
            ModelKind::ICNet => "ICNet",
        }
    }

    fn cheb_order(&self) -> usize {
        match self {
            ModelKind::ChebNet { k } => *k,
            _ => 1,
        }
    }
}

impl fmt::Display for ModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelKind::ChebNet { k } => write!(f, "ChebNet(k={k})"),
            other => f.write_str(other.label()),
        }
    }
}

/// The output nonlinearity of the regressor head.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OutputHead {
    /// Linear output; pair with log-scale labels (numerically robust, the
    /// library default).
    #[default]
    Identity,
    /// Exponential output, the paper's Eq. 3 (`Y = exp(...)`), modelling
    /// the exponential growth of runtime with key-gate count directly.
    Exp,
}

/// A trainable graph regressor (two graph convolutions → aggregation →
/// scalar head). See the [crate docs](crate) for an end-to-end example.
#[derive(Debug, Clone)]
pub struct GraphModel {
    /// Operator family.
    pub kind: ModelKind,
    /// Aggregation stage.
    pub aggregation: Aggregation,
    /// Output head.
    pub output: OutputHead,
    num_features: usize,
    hidden: usize,
    conv_layers: usize,
    params: Vec<Matrix>,
}

impl GraphModel {
    /// Creates a model with Xavier-initialized parameters and the paper's
    /// two graph-convolution layers.
    ///
    /// `num_features` must match the encoding width
    /// ([`FeatureSet::width`](crate::FeatureSet::width)); `hidden1`/`hidden2`
    /// are the widths of the two graph convolutions (this reproduction keeps
    /// them equal internally; `hidden2` is the effective width).
    pub fn new(
        kind: ModelKind,
        aggregation: Aggregation,
        num_features: usize,
        hidden1: usize,
        hidden2: usize,
        seed: u64,
    ) -> Self {
        let _ = hidden1;
        GraphModel::with_conv_layers(kind, aggregation, num_features, hidden2, 2, seed)
    }

    /// Creates a model with `conv_layers` stacked graph convolutions of
    /// width `hidden` (the layer-count ablation of `DESIGN.md` §9).
    ///
    /// # Panics
    ///
    /// Panics if `conv_layers == 0`.
    pub fn with_conv_layers(
        kind: ModelKind,
        aggregation: Aggregation,
        num_features: usize,
        hidden: usize,
        conv_layers: usize,
        seed: u64,
    ) -> Self {
        assert!(conv_layers >= 1, "at least one graph convolution required");
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x1C4E_7000);
        let k = kind.cheb_order();
        let mut params = Vec::new();
        for layer in 0..conv_layers {
            let in_dim = if layer == 0 { num_features } else { hidden };
            for _ in 0..k {
                params.push(init::xavier_uniform(in_dim, hidden, &mut rng));
            }
        }
        if aggregation == Aggregation::Nn {
            params.push(init::gaussian(num_features, 1, 0.1, &mut rng)); // Θfeat logits
            params.push(init::gaussian(hidden, 1, 0.1, &mut rng)); // Θgate
        }
        // Near-zero head: initial predictions start at the label mean
        // regardless of the pooled magnitude (sum pooling over thousands of
        // gates on the raw adjacency can be large), which keeps the first
        // optimization steps stable for every operator/aggregation combo.
        params.push(init::gaussian(hidden, 1, 1e-3, &mut rng)); // w_out
        params.push(Matrix::zeros(1, 1)); // bias
        GraphModel {
            kind,
            aggregation,
            output: OutputHead::Identity,
            num_features,
            hidden,
            conv_layers,
            params,
        }
    }

    /// Reassembles a model from serialized parts (see the `persist`
    /// module). Validates that the parameter shapes are consistent with the
    /// declared architecture.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found.
    pub(crate) fn from_parts(
        kind: ModelKind,
        aggregation: Aggregation,
        output: OutputHead,
        num_features: usize,
        params: Vec<Matrix>,
    ) -> Result<GraphModel, String> {
        let k = kind.cheb_order();
        let extra = if aggregation == Aggregation::Nn { 4 } else { 2 };
        if params.len() < k + extra {
            return Err("too few parameter matrices".into());
        }
        let conv_weights = params.len() - extra;
        if !conv_weights.is_multiple_of(k) {
            return Err("conv weight count not divisible by the Chebyshev order".into());
        }
        let conv_layers = conv_weights / k;
        if conv_layers == 0 {
            return Err("no convolution layers".into());
        }
        if params[0].rows() != num_features {
            return Err("first conv weight does not match the feature count".into());
        }
        let hidden = params[0].cols();
        for (i, p) in params[..conv_weights].iter().enumerate() {
            let expect_in = if i / k == 0 { num_features } else { hidden };
            if p.shape() != (expect_in, hidden) {
                return Err(format!("conv weight {i} has shape {:?}", p.shape()));
            }
        }
        let mut idx = conv_weights;
        if aggregation == Aggregation::Nn {
            if params[idx].shape() != (num_features, 1) {
                return Err("Θfeat shape mismatch".into());
            }
            if params[idx + 1].shape() != (hidden, 1) {
                return Err("Θgate shape mismatch".into());
            }
            idx += 2;
        }
        if params[idx].shape() != (hidden, 1) {
            return Err("output weight shape mismatch".into());
        }
        if params[idx + 1].shape() != (1, 1) {
            return Err("bias shape mismatch".into());
        }
        Ok(GraphModel {
            kind,
            aggregation,
            output,
            num_features,
            hidden,
            conv_layers,
            params,
        })
    }

    /// Switches the output head (builder style).
    pub fn with_output(mut self, output: OutputHead) -> Self {
        self.output = output;
        self
    }

    /// The model's parameter matrices (conv weights, attention, head).
    pub fn params(&self) -> &[Matrix] {
        &self.params
    }

    /// Mutable access for optimizers.
    pub fn params_mut(&mut self) -> &mut [Matrix] {
        &mut self.params
    }

    /// Total scalar parameter count.
    pub fn num_params(&self) -> usize {
        self.params.iter().map(|p| p.as_slice().len()).sum()
    }

    /// Feature width this model expects.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// The learned feature-attention distribution (softmax of the Θfeat
    /// logits), or `None` for sum/mean aggregation. Index 0 is the gate
    /// mask; indices 1.. are the one-hot gate types — the quantities of the
    /// paper's Table III case study.
    pub fn feature_attention(&self) -> Option<Vec<f64>> {
        if self.aggregation != Aggregation::Nn {
            return None;
        }
        let theta = &self.params[self.kind.cheb_order() * self.conv_layers];
        let max = theta
            .as_slice()
            .iter()
            .fold(f64::NEG_INFINITY, |m, &v| m.max(v));
        let exps: Vec<f64> = theta.as_slice().iter().map(|&v| (v - max).exp()).collect();
        let total: f64 = exps.iter().sum();
        Some(exps.iter().map(|&e| e / total).collect())
    }

    /// One graph-convolution layer: `relu(op-filter(input) @ w)`.
    fn conv(&self, tape: &mut Tape, op: &Arc<CsrMatrix>, input: VarId, weights: &[VarId]) -> VarId {
        let mixed = match self.kind {
            ModelKind::Gcn | ModelKind::ICNet => {
                let propagated = tape.spmm(Arc::clone(op), input);
                tape.matmul(propagated, weights[0])
            }
            ModelKind::ChebNet { k } => {
                // Chebyshev recurrence: T0 = X, T1 = L̃X, Tj = 2 L̃ T(j-1) - T(j-2).
                let mut terms: Vec<VarId> = Vec::with_capacity(k);
                terms.push(input);
                if k > 1 {
                    terms.push(tape.spmm(Arc::clone(op), input));
                }
                for j in 2..k {
                    let prop = tape.spmm(Arc::clone(op), terms[j - 1]);
                    let doubled = tape.scale(prop, 2.0);
                    let t = tape.sub(doubled, terms[j - 2]);
                    terms.push(t);
                }
                let mut acc = tape.matmul(terms[0], weights[0]);
                for (j, &t) in terms.iter().enumerate().skip(1) {
                    let contrib = tape.matmul(t, weights[j]);
                    acc = tape.add(acc, contrib);
                }
                acc
            }
        };
        tape.relu(mixed)
    }

    /// One graph-convolution layer over a stacked batch: identical math to
    /// [`conv`](Self::conv), with the dense products routed through
    /// segment-aware matmuls so weight gradients fold per graph in batch
    /// order (the reduction the per-instance trainer performs explicitly).
    fn conv_batched(
        &self,
        tape: &mut Tape,
        op: &Arc<CsrMatrix>,
        segments: &Arc<Segments>,
        grad_scale: f64,
        input: VarId,
        weights: &[VarId],
    ) -> VarId {
        let mixed = match self.kind {
            ModelKind::Gcn | ModelKind::ICNet => {
                let propagated = tape.spmm(Arc::clone(op), input);
                tape.matmul_seg(propagated, weights[0], Arc::clone(segments), grad_scale)
            }
            ModelKind::ChebNet { k } => {
                let mut terms: Vec<VarId> = Vec::with_capacity(k);
                terms.push(input);
                if k > 1 {
                    terms.push(tape.spmm(Arc::clone(op), input));
                }
                for j in 2..k {
                    let prop = tape.spmm(Arc::clone(op), terms[j - 1]);
                    let doubled = tape.scale(prop, 2.0);
                    let t = tape.sub(doubled, terms[j - 2]);
                    terms.push(t);
                }
                let mut acc =
                    tape.matmul_seg(terms[0], weights[0], Arc::clone(segments), grad_scale);
                for (j, &t) in terms.iter().enumerate().skip(1) {
                    let contrib = tape.matmul_seg(t, weights[j], Arc::clone(segments), grad_scale);
                    acc = tape.add(acc, contrib);
                }
                acc
            }
        };
        tape.relu(mixed)
    }

    /// Builds the forward graph for a whole mini-batch on one tape: the
    /// block-diagonal operator propagates every instance at once and the
    /// per-graph stages (pooling, softmax attention, head) walk the batch
    /// via its [`Segments`]. Returns a `B x 1` prediction node.
    ///
    /// `grad_scale` is the weight each instance's parameter gradient carries
    /// in the backward fold (`1/batch_size` during training, `1.0` for pure
    /// inference); the fold order is the batch order, exactly matching the
    /// per-instance reference engine so both produce bit-identical
    /// gradients (DESIGN.md §10).
    pub(crate) fn forward_batched(
        &self,
        tape: &mut Tape,
        param_ids: &[VarId],
        batch: &BatchedGraph,
        x: Matrix,
        grad_scale: f64,
    ) -> VarId {
        assert_eq!(
            x.cols(),
            self.num_features,
            "feature width mismatch: model expects {}",
            self.num_features
        );
        assert_eq!(
            x.rows(),
            batch.total_nodes(),
            "stacked features must cover every node in the batch"
        );
        let seg = Arc::clone(batch.segments());
        let op = batch.operator();
        let k = self.kind.cheb_order();
        let b = seg.len();
        let mut x_node = tape.constant(x);

        let mut idx = self.conv_layers * k;
        let (theta_f, theta_g) = if self.aggregation == Aggregation::Nn {
            let tf = param_ids[idx];
            let tg = param_ids[idx + 1];
            idx += 2;
            (Some(tf), Some(tg))
        } else {
            (None, None)
        };
        let w_out = param_ids[idx];
        let bias = param_ids[idx + 1];

        // Θfeat: one softmax row broadcast over every stacked node row.
        if let Some(tf) = theta_f {
            let spread = tape.broadcast_softmax_seg(tf, Arc::clone(&seg), grad_scale);
            x_node = tape.hadamard(x_node, spread);
        }

        let mut h2 = x_node;
        for layer in 0..self.conv_layers {
            h2 = self.conv_batched(
                tape,
                op,
                &seg,
                grad_scale,
                h2,
                &param_ids[layer * k..(layer + 1) * k],
            );
        }

        // Pool each graph's node rows into one row of a B x hidden matrix.
        let pooled = match self.aggregation {
            Aggregation::Sum | Aggregation::Mean => {
                let summed = tape.segment_sum(h2, Arc::clone(&seg)); // B x h
                if self.aggregation == Aggregation::Mean {
                    let inv =
                        Matrix::from_fn(b, self.hidden, |g, _| 1.0 / seg.range(g).len() as f64);
                    let invc = tape.constant(inv);
                    tape.hadamard(summed, invc)
                } else {
                    summed
                }
            }
            Aggregation::Nn => {
                let tg = theta_g.expect("Nn aggregation carries Θgate");
                let scores = tape.matmul_seg(h2, tg, Arc::clone(&seg), grad_scale); // n x 1
                let attn = tape.segment_softmax_col(scores, Arc::clone(&seg));
                tape.segment_weighted_sum(h2, attn, Arc::clone(&seg)) // B x h
            }
        };

        let head_seg = Arc::new(Segments::units(b));
        let lin = tape.matmul_seg(pooled, w_out, head_seg, grad_scale); // B x 1
        let out = tape.add_bias_row_seg(lin, bias, grad_scale);
        match self.output {
            OutputHead::Identity => out,
            OutputHead::Exp => tape.exp(out),
        }
    }

    /// Builds the forward graph on `tape`; `param_ids` must be leaves of the
    /// model's parameters in order. This is the per-instance reference path
    /// (one graph per tape); batched training and inference use
    /// [`forward_batched`](Self::forward_batched), which is bit-identical.
    /// Returns the scalar prediction node.
    pub(crate) fn forward(
        &self,
        tape: &mut Tape,
        param_ids: &[VarId],
        op: &Arc<CsrMatrix>,
        x: &Matrix,
    ) -> VarId {
        self.forward_with_attention(tape, param_ids, op, x).0
    }

    /// Like [`forward`](Self::forward), additionally returning the
    /// gate-attention node when the model aggregates with Θgate.
    pub(crate) fn forward_with_attention(
        &self,
        tape: &mut Tape,
        param_ids: &[VarId],
        op: &Arc<CsrMatrix>,
        x: &Matrix,
    ) -> (VarId, Option<VarId>) {
        assert_eq!(
            x.cols(),
            self.num_features,
            "feature width mismatch: model expects {}",
            self.num_features
        );
        let n = x.rows();
        let k = self.kind.cheb_order();
        let mut x_node = tape.constant(x.clone());

        let mut idx = self.conv_layers * k;
        let (theta_f, theta_g) = if self.aggregation == Aggregation::Nn {
            let tf = param_ids[idx];
            let tg = param_ids[idx + 1];
            idx += 2;
            (Some(tf), Some(tg))
        } else {
            (None, None)
        };
        let w_out = param_ids[idx];
        let bias = param_ids[idx + 1];

        // Θfeat: learned feature attention rescales the input columns.
        if let Some(tf) = theta_f {
            let attn = tape.softmax_col(tf); // F x 1
            let attn_row = tape.transpose(attn); // 1 x F
            let ones = tape.constant(Matrix::ones(n, 1));
            let spread = tape.matmul(ones, attn_row); // n x F
            x_node = tape.hadamard(x_node, spread);
        }

        let mut h2 = x_node;
        for layer in 0..self.conv_layers {
            h2 = self.conv(tape, op, h2, &param_ids[layer * k..(layer + 1) * k]);
        }

        // Θgate: pool gates into one h2-dimensional vector.
        let mut attn_node = None;
        let pooled = match self.aggregation {
            Aggregation::Sum | Aggregation::Mean => {
                let ones = tape.constant(Matrix::ones(n, 1));
                let ht = tape.transpose(h2);
                let summed = tape.matmul(ht, ones); // h2 x 1
                if self.aggregation == Aggregation::Mean {
                    tape.scale(summed, 1.0 / n as f64)
                } else {
                    summed
                }
            }
            Aggregation::Nn => {
                let tg = theta_g.expect("Nn aggregation carries Θgate");
                let scores = tape.matmul(h2, tg); // n x 1
                let attn = tape.softmax_col(scores);
                attn_node = Some(attn);
                let ht = tape.transpose(h2);
                tape.matmul(ht, attn) // h2 x 1
            }
        };

        let wt = tape.transpose(w_out); // 1 x h2
        let lin = tape.matmul(wt, pooled); // 1 x 1
        let out = tape.add(lin, bias);
        let out = match self.output {
            OutputHead::Identity => out,
            OutputHead::Exp => tape.exp(out),
        };
        (out, attn_node)
    }

    /// The gate-attention distribution Θgate produces for one instance: one
    /// weight per gate, summing to 1. Returns `None` for sum/mean
    /// aggregation. High-attention gates are the ones the model considers
    /// decisive for this placement's runtime.
    pub fn gate_attention(&self, op: &Arc<CsrMatrix>, x: &Matrix) -> Option<Vec<f64>> {
        if self.aggregation != Aggregation::Nn {
            return None;
        }
        let mut tape = Tape::new();
        let ids = self.insert_params(&mut tape);
        let (_, attn) = self.forward_with_attention(&mut tape, &ids, op, x);
        attn.map(|a| tape.value(a).as_slice().to_vec())
    }

    /// Inserts the parameters as trainable leaves on `tape`.
    pub(crate) fn insert_params(&self, tape: &mut Tape) -> Vec<VarId> {
        self.params.iter().map(|p| tape.leaf(p.clone())).collect()
    }

    /// Predicts the (log-)runtime of one instance.
    pub fn predict(&self, op: &Arc<CsrMatrix>, x: &Matrix) -> f64 {
        let batch = BatchedGraph::single(Arc::clone(op));
        self.predict_batched(&batch, &[x])[0]
    }

    /// Predicts every instance of a pre-packed batch in one forward pass.
    pub fn predict_batched(&self, batch: &BatchedGraph, xs: &[&Matrix]) -> Vec<f64> {
        if xs.is_empty() && batch.num_graphs() == 0 {
            return Vec::new();
        }
        // Lease the thread's standing buffer pool so repeated inference
        // (the serve loop, evaluation sweeps) reuses one set of buffers.
        let mut lease = PoolLease::acquire();
        let x = batch.stack_features_pooled(xs, lease.pool());
        let mut tape = Tape::with_pool(std::mem::take(lease.pool()));
        let ids = self.insert_params(&mut tape);
        let out = self.forward_batched(&mut tape, &ids, batch, x, 1.0);
        let values = tape.value(out).as_slice().to_vec();
        *lease.pool() = tape.into_pool();
        values
    }

    /// Predicts a batch of instances sharing one graph operator.
    pub fn predict_batch(&self, op: &Arc<CsrMatrix>, xs: &[Matrix]) -> Vec<f64> {
        if xs.is_empty() {
            return Vec::new();
        }
        let batch = BatchedGraph::replicate(op, xs.len());
        let refs: Vec<&Matrix> = xs.iter().collect();
        self.predict_batched(&batch, &refs)
    }
}

impl fmt::Display for GraphModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}-{} ({} features, {} x {}-wide convs, {} params)",
            self.kind,
            self.aggregation,
            self.num_features,
            self.conv_layers,
            self.hidden,
            self.num_params()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{encode_features, FeatureSet};

    fn setup(kind: ModelKind, agg: Aggregation) -> (Arc<CsrMatrix>, Matrix, GraphModel) {
        let circuit = netlist::c17();
        let graph = CircuitGraph::from_circuit(&circuit);
        let op = Arc::new(kind.operator(&graph));
        let sel = vec![circuit.find("n10").unwrap()];
        let x = encode_features(&circuit, &sel, FeatureSet::All);
        let model = GraphModel::new(kind, agg, 7, 8, 6, 42);
        (op, x, model)
    }

    #[test]
    fn forward_produces_finite_scalar_for_all_kinds() {
        for kind in [
            ModelKind::Gcn,
            ModelKind::ChebNet { k: 3 },
            ModelKind::ICNet,
        ] {
            for agg in [Aggregation::Sum, Aggregation::Mean, Aggregation::Nn] {
                let (op, x, model) = setup(kind, agg);
                let y = model.predict(&op, &x);
                assert!(y.is_finite(), "{kind} {agg}");
            }
        }
    }

    #[test]
    fn exp_head_is_positive() {
        let (op, x, model) = setup(ModelKind::ICNet, Aggregation::Nn);
        let model = model.with_output(OutputHead::Exp);
        assert!(model.predict(&op, &x) > 0.0);
    }

    #[test]
    fn predictions_depend_on_the_mask() {
        let circuit = netlist::c17();
        let graph = CircuitGraph::from_circuit(&circuit);
        let op = Arc::new(ModelKind::ICNet.operator(&graph));
        let model = GraphModel::new(ModelKind::ICNet, Aggregation::Nn, 7, 8, 6, 1);
        let a = encode_features(&circuit, &[circuit.find("n10").unwrap()], FeatureSet::All);
        let all: Vec<netlist::GateId> = circuit
            .iter()
            .filter(|(_, g)| !g.kind().is_input())
            .map(|(id, _)| id)
            .collect();
        let b = encode_features(&circuit, &all, FeatureSet::All);
        assert_ne!(model.predict(&op, &a), model.predict(&op, &b));
    }

    #[test]
    fn feature_attention_only_for_nn() {
        let (_, _, nn) = setup(ModelKind::ICNet, Aggregation::Nn);
        let attn = nn.feature_attention().expect("NN model has Θfeat");
        assert_eq!(attn.len(), 7);
        assert!((attn.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        let (_, _, sum) = setup(ModelKind::ICNet, Aggregation::Sum);
        assert!(sum.feature_attention().is_none());
    }

    #[test]
    fn param_counts_differ_by_kind() {
        let (_, _, gcn) = setup(ModelKind::Gcn, Aggregation::Sum);
        let (_, _, cheb) = setup(ModelKind::ChebNet { k: 3 }, Aggregation::Sum);
        assert!(cheb.num_params() > gcn.num_params());
        assert!(gcn.to_string().contains("GCN"));
    }

    #[test]
    fn batch_predict_matches_single() {
        let (op, x, model) = setup(ModelKind::ICNet, Aggregation::Nn);
        let batch = model.predict_batch(&op, std::slice::from_ref(&x));
        assert_eq!(batch[0], model.predict(&op, &x));
    }

    #[test]
    fn batched_forward_is_bit_identical_to_per_instance() {
        let circuit = netlist::c17();
        let graph = CircuitGraph::from_circuit(&circuit);
        let a = encode_features(&circuit, &[circuit.find("n10").unwrap()], FeatureSet::All);
        let b = encode_features(
            &circuit,
            &[circuit.find("n22").unwrap(), circuit.find("n23").unwrap()],
            FeatureSet::All,
        );
        let c = encode_features(&circuit, &[], FeatureSet::All);
        let xs = vec![a, b, c];
        for kind in [
            ModelKind::Gcn,
            ModelKind::ChebNet { k: 3 },
            ModelKind::ICNet,
        ] {
            let op = Arc::new(kind.operator(&graph));
            for agg in [Aggregation::Sum, Aggregation::Mean, Aggregation::Nn] {
                for output in [OutputHead::Identity, OutputHead::Exp] {
                    let model = GraphModel::new(kind, agg, 7, 8, 6, 42).with_output(output);
                    let batched = model.predict_batch(&op, &xs);
                    // The reference path: one tape per instance.
                    let reference: Vec<f64> = xs
                        .iter()
                        .map(|x| {
                            let mut tape = Tape::new();
                            let ids = model.insert_params(&mut tape);
                            let out = model.forward(&mut tape, &ids, &op, x);
                            tape.value(out).get(0, 0)
                        })
                        .collect();
                    assert_eq!(batched, reference, "{kind} {agg} {output:?}");
                }
            }
        }
    }

    #[test]
    fn gate_attention_is_a_distribution_over_gates() {
        let (op, x, model) = setup(ModelKind::ICNet, Aggregation::Nn);
        let attn = model.gate_attention(&op, &x).expect("NN aggregation");
        assert_eq!(attn.len(), 11, "one weight per c17 gate");
        assert!((attn.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(attn.iter().all(|&a| a >= 0.0));
        let (op, x, sum_model) = setup(ModelKind::ICNet, Aggregation::Sum);
        assert!(sum_model.gate_attention(&op, &x).is_none());
    }

    #[test]
    fn conv_depth_is_configurable() {
        let circuit = netlist::c17();
        let graph = CircuitGraph::from_circuit(&circuit);
        let op = Arc::new(ModelKind::ICNet.operator(&graph));
        let x = encode_features(&circuit, &[], FeatureSet::All);
        for layers in [1usize, 2, 3] {
            let model =
                GraphModel::with_conv_layers(ModelKind::ICNet, Aggregation::Nn, 7, 8, layers, 3);
            assert!(model.predict(&op, &x).is_finite(), "{layers} layers");
            assert!(model.feature_attention().is_some(), "{layers} layers");
            assert!(model.to_string().contains(&format!("{layers} x")));
        }
        // Deeper models carry more parameters.
        let shallow = GraphModel::with_conv_layers(ModelKind::ICNet, Aggregation::Sum, 7, 8, 1, 0);
        let deep = GraphModel::with_conv_layers(ModelKind::ICNet, Aggregation::Sum, 7, 8, 3, 0);
        assert!(deep.num_params() > shallow.num_params());
    }

    #[test]
    #[should_panic(expected = "at least one graph convolution")]
    fn zero_conv_layers_panics() {
        let _ = GraphModel::with_conv_layers(ModelKind::Gcn, Aggregation::Sum, 7, 8, 0, 0);
    }

    #[test]
    #[should_panic(expected = "feature width mismatch")]
    fn wrong_feature_width_panics() {
        let (op, _, model) = setup(ModelKind::ICNet, Aggregation::Nn);
        let bad = Matrix::zeros(11, 3);
        let _ = model.predict(&op, &bad);
    }
}
