//! Block-diagonal packing of a mini-batch of circuit graphs.
//!
//! A batch of B instances is one graph problem: the per-graph operators are
//! stacked into a single block-diagonal CSR matrix, the per-graph feature
//! matrices into one tall dense matrix, and a [`Segments`] table records
//! which stacked rows belong to which graph. One spmm/matmul chain then
//! processes the whole batch per layer, instead of B separate tapes
//! (DESIGN.md §10).
//!
//! The packing is purely structural — it depends on the batch *layout*
//! (which operator, how many copies) and not on the feature data — so a
//! trainer builds one `BatchedGraph` per distinct batch length and reuses it
//! across epochs, including its lazily computed operator transpose (seeded
//! into every fresh tape via [`Tape::seed_transpose`](tensor::Tape)).

use std::sync::{Arc, OnceLock};
use tensor::{CsrMatrix, Matrix, Segments};

/// B graphs packed into one block-diagonal operator plus row segments.
#[derive(Debug)]
pub struct BatchedGraph {
    op: Arc<CsrMatrix>,
    segments: Arc<Segments>,
    op_t: OnceLock<Arc<CsrMatrix>>,
}

impl BatchedGraph {
    /// Packs an explicit list of (possibly distinct) graph operators.
    ///
    /// # Panics
    ///
    /// Panics if any operator is non-square (graph operators always are).
    pub fn from_ops(ops: &[&CsrMatrix]) -> Self {
        for op in ops {
            assert_eq!(op.rows(), op.cols(), "graph operators must be square");
        }
        let lens: Vec<usize> = ops.iter().map(|op| op.rows()).collect();
        BatchedGraph {
            op: Arc::new(CsrMatrix::block_diag(ops)),
            segments: Arc::new(Segments::from_lens(&lens)),
            op_t: OnceLock::new(),
        }
    }

    /// Packs `count` copies of one operator — the common training case where
    /// every instance shares the circuit topology and differs only in its
    /// feature matrix (encryption mask).
    pub fn replicate(op: &CsrMatrix, count: usize) -> Self {
        let ops: Vec<&CsrMatrix> = (0..count).map(|_| op).collect();
        BatchedGraph::from_ops(&ops)
    }

    /// Wraps a single graph as a batch of one, reusing the operator `Arc`
    /// without copying it.
    pub fn single(op: Arc<CsrMatrix>) -> Self {
        assert_eq!(op.rows(), op.cols(), "graph operators must be square");
        let segments = Arc::new(Segments::from_lens(&[op.rows()]));
        BatchedGraph {
            op,
            segments,
            op_t: OnceLock::new(),
        }
    }

    /// The block-diagonal operator.
    pub fn operator(&self) -> &Arc<CsrMatrix> {
        &self.op
    }

    /// The per-graph row ranges.
    pub fn segments(&self) -> &Arc<Segments> {
        &self.segments
    }

    /// Number of graphs in the batch.
    pub fn num_graphs(&self) -> usize {
        self.segments.len()
    }

    /// Total stacked node count.
    pub fn total_nodes(&self) -> usize {
        self.segments.total_rows()
    }

    /// The transpose of the block-diagonal operator, computed once per
    /// layout and shared by every tape that trains on it.
    pub fn operator_transpose(&self) -> Arc<CsrMatrix> {
        Arc::clone(self.op_t.get_or_init(|| Arc::new(self.op.transpose())))
    }

    /// Stacks per-graph feature matrices into one tall matrix whose row
    /// blocks line up with [`segments`](Self::segments).
    ///
    /// # Panics
    ///
    /// Panics if the number of matrices or any row count disagrees with the
    /// batch layout, or if the feature widths are inconsistent.
    pub fn stack_features(&self, xs: &[&Matrix]) -> Matrix {
        assert_eq!(
            xs.len(),
            self.num_graphs(),
            "feature stack: batch holds {} graphs",
            self.num_graphs()
        );
        let cols = xs.first().map_or(0, |x| x.cols());
        let mut data = Vec::with_capacity(self.total_nodes() * cols);
        for (i, x) in xs.iter().enumerate() {
            assert_eq!(
                x.rows(),
                self.segments.range(i).len(),
                "feature stack: instance {i} row count does not match its graph"
            );
            assert_eq!(
                x.cols(),
                cols,
                "feature stack: instance {i} feature width differs"
            );
            data.extend_from_slice(x.as_slice());
        }
        Matrix::from_vec(self.total_nodes(), cols, data)
    }

    /// [`BatchedGraph::stack_features`] into a buffer from `pool` (the
    /// training hot path restacks every mini-batch; pooling skips the
    /// allocation, never changing the stacked values).
    ///
    /// # Panics
    ///
    /// Same panics as [`BatchedGraph::stack_features`].
    pub fn stack_features_pooled(&self, xs: &[&Matrix], pool: &mut tensor::BufferPool) -> Matrix {
        assert_eq!(
            xs.len(),
            self.num_graphs(),
            "feature stack: batch holds {} graphs",
            self.num_graphs()
        );
        let cols = xs.first().map_or(0, |x| x.cols());
        let mut out = pool.alloc(self.total_nodes(), cols);
        let mut cursor = 0usize;
        {
            let dst = out.as_mut_slice();
            for (i, x) in xs.iter().enumerate() {
                assert_eq!(
                    x.rows(),
                    self.segments.range(i).len(),
                    "feature stack: instance {i} row count does not match its graph"
                );
                assert_eq!(
                    x.cols(),
                    cols,
                    "feature stack: instance {i} feature width differs"
                );
                let src = x.as_slice();
                dst[cursor..cursor + src.len()].copy_from_slice(src);
                cursor += src.len();
            }
        }
        debug_assert_eq!(cursor, out.as_slice().len(), "stack covered every row");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::CsrMatrix;

    fn op(n: usize) -> CsrMatrix {
        CsrMatrix::identity(n)
    }

    #[test]
    fn replicate_builds_block_diagonal_layout() {
        let base = op(3);
        let batch = BatchedGraph::replicate(&base, 4);
        assert_eq!(batch.num_graphs(), 4);
        assert_eq!(batch.total_nodes(), 12);
        assert_eq!(batch.operator().rows(), 12);
        assert_eq!(batch.operator().nnz(), 4 * base.nnz());
        assert_eq!(batch.segments().range(2), 6..9);
    }

    #[test]
    fn single_shares_the_operator_arc() {
        let base = Arc::new(op(5));
        let batch = BatchedGraph::single(Arc::clone(&base));
        assert!(Arc::ptr_eq(batch.operator(), &base));
        assert_eq!(batch.num_graphs(), 1);
        assert_eq!(batch.total_nodes(), 5);
    }

    #[test]
    fn transpose_is_computed_once_and_shaped_right() {
        let batch = BatchedGraph::replicate(&op(3), 2);
        let t1 = batch.operator_transpose();
        let t2 = batch.operator_transpose();
        assert!(Arc::ptr_eq(&t1, &t2), "lazy transpose is cached");
        assert_eq!((t1.rows(), t1.cols()), (6, 6));
    }

    #[test]
    fn stack_features_concatenates_row_blocks() {
        let batch = BatchedGraph::replicate(&op(2), 2);
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let stacked = batch.stack_features(&[&a, &b]);
        assert_eq!(stacked.shape(), (4, 2));
        assert_eq!(
            stacked.as_slice(),
            &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]
        );
    }

    #[test]
    #[should_panic(expected = "row count does not match")]
    fn stack_features_rejects_wrong_row_count() {
        let batch = BatchedGraph::replicate(&op(2), 2);
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(3, 2);
        let _ = batch.stack_features(&[&a, &b]);
    }

    #[test]
    fn from_ops_allows_heterogeneous_sizes() {
        let a = op(2);
        let b = op(5);
        let batch = BatchedGraph::from_ops(&[&a, &b]);
        assert_eq!(batch.num_graphs(), 2);
        assert_eq!(batch.total_nodes(), 7);
        assert_eq!(batch.segments().range(1), 2..7);
    }

    #[test]
    fn empty_batch_is_representable() {
        let batch = BatchedGraph::from_ops(&[]);
        assert_eq!(batch.num_graphs(), 0);
        assert_eq!(batch.total_nodes(), 0);
        let stacked = batch.stack_features(&[]);
        assert_eq!(stacked.shape(), (0, 0));
    }
}
