//! Mini-batch training loop (the paper's Algorithm 1: ADAM, random batches,
//! stop on loss convergence).

use crate::model::GraphModel;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::rc::Rc;
use tensor::{Adam, CsrMatrix, Matrix, Optimizer, Tape};

/// Training hyper-parameters.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// ADAM learning rate.
    pub lr: f64,
    /// Hard cap on epochs.
    pub max_epochs: usize,
    /// Instances per batch.
    pub batch_size: usize,
    /// Convergence: stop when the epoch loss improves by less than `tol`
    /// for `patience` consecutive epochs (Algorithm 1 line 13).
    pub tol: f64,
    /// Epochs of sub-`tol` improvement tolerated before stopping.
    pub patience: usize,
    /// Batch shuffling seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            lr: 1e-3,
            max_epochs: 300,
            batch_size: 16,
            tol: 1e-5,
            patience: 10,
            seed: 0,
        }
    }
}

impl TrainConfig {
    /// A small budget for tests and doc examples.
    pub fn quick() -> Self {
        TrainConfig {
            max_epochs: 30,
            patience: 3,
            ..TrainConfig::default()
        }
    }
}

/// What happened during training.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Epochs actually run.
    pub epochs_run: usize,
    /// Mean squared error over the training set after the last epoch.
    pub final_loss: f64,
    /// Per-epoch mean training loss.
    pub loss_history: Vec<f64>,
    /// Whether the tolerance criterion (not the epoch cap) ended training.
    pub converged: bool,
}

/// Trains `model` on instances `(xs[i], ys[i])` sharing the graph operator
/// `op`. Labels should already be on the scale the model predicts
/// (log-seconds for the default [`OutputHead::Identity`]).
///
/// # Panics
///
/// Panics if `xs` and `ys` lengths differ or the training set is empty.
///
/// [`OutputHead::Identity`]: crate::OutputHead::Identity
pub fn train(
    model: &mut GraphModel,
    op: &Rc<CsrMatrix>,
    xs: &[Matrix],
    ys: &[f64],
    config: &TrainConfig,
) -> TrainReport {
    assert_eq!(xs.len(), ys.len(), "xs/ys length mismatch");
    assert!(!xs.is_empty(), "empty training set");
    let mut optimizer = Adam::new(config.lr);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut order: Vec<usize> = (0..xs.len()).collect();
    let mut history = Vec::new();
    let mut best = f64::INFINITY;
    let mut stall = 0usize;
    let mut converged = false;

    for epoch in 0..config.max_epochs {
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0;
        for batch in order.chunks(config.batch_size.max(1)) {
            let mut tape = Tape::new();
            let ids = model.insert_params(&mut tape);
            // Batch loss: mean of squared residuals (Algorithm 1 lines 10-11).
            let mut total = None;
            for &i in batch {
                let pred = model.forward(&mut tape, &ids, op, &xs[i]);
                let target = tape.constant(Matrix::scalar(ys[i]));
                let diff = tape.sub(pred, target);
                let sq = tape.hadamard(diff, diff);
                total = Some(match total {
                    None => sq,
                    Some(acc) => tape.add(acc, sq),
                });
            }
            let total = total.expect("non-empty batch");
            let loss = tape.scale(total, 1.0 / batch.len() as f64);
            tape.backward(loss);
            epoch_loss += tape.value(loss).get(0, 0) * batch.len() as f64;
            let grads: Vec<Matrix> = ids
                .iter()
                .zip(model.params())
                .map(|(&id, p)| {
                    tape.try_grad(id)
                        .cloned()
                        .unwrap_or_else(|| Matrix::zeros(p.rows(), p.cols()))
                })
                .collect();
            optimizer.step(model.params_mut(), &grads);
        }
        epoch_loss /= xs.len() as f64;
        history.push(epoch_loss);
        if best - epoch_loss < config.tol {
            stall += 1;
            if stall >= config.patience {
                converged = true;
                return TrainReport {
                    epochs_run: epoch + 1,
                    final_loss: epoch_loss,
                    loss_history: history,
                    converged,
                };
            }
        } else {
            stall = 0;
        }
        best = best.min(epoch_loss);
    }
    TrainReport {
        epochs_run: config.max_epochs,
        final_loss: *history.last().expect("at least one epoch"),
        loss_history: history,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{encode_features, FeatureSet};
    use crate::graph::CircuitGraph;
    use crate::model::ModelKind;
    use crate::Aggregation;
    use netlist::GateId;

    /// Synthetic task on c17: label = #selected gates (training must drive
    /// the loss down substantially).
    fn toy_dataset() -> (Rc<CsrMatrix>, Vec<Matrix>, Vec<f64>) {
        let circuit = netlist::c17();
        let graph = CircuitGraph::from_circuit(&circuit);
        let op = Rc::new(ModelKind::ICNet.operator(&graph));
        let logic: Vec<GateId> = circuit
            .iter()
            .filter(|(_, g)| !g.kind().is_input())
            .map(|(id, _)| id)
            .collect();
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        // All subsets of the first 5 logic gates.
        for mask in 0u32..32 {
            let sel: Vec<GateId> = (0..5)
                .filter(|&b| (mask >> b) & 1 == 1)
                .map(|b| logic[b])
                .collect();
            xs.push(encode_features(&circuit, &sel, FeatureSet::All));
            ys.push(sel.len() as f64 * 0.5);
        }
        (op, xs, ys)
    }

    #[test]
    fn training_reduces_loss() {
        let (op, xs, ys) = toy_dataset();
        let mut model = GraphModel::new(ModelKind::ICNet, Aggregation::Nn, 7, 12, 8, 3);
        let cfg = TrainConfig {
            max_epochs: 120,
            lr: 5e-3,
            ..TrainConfig::default()
        };
        let report = train(&mut model, &op, &xs, &ys, &cfg);
        assert!(
            report.final_loss < 0.1 * report.loss_history[0],
            "loss did not drop: {} -> {}",
            report.loss_history[0],
            report.final_loss
        );
    }

    #[test]
    fn sum_and_mean_aggregations_also_train() {
        let (op, xs, ys) = toy_dataset();
        for agg in [Aggregation::Sum, Aggregation::Mean] {
            let mut model = GraphModel::new(ModelKind::ICNet, agg, 7, 8, 6, 4);
            let report = train(&mut model, &op, &xs, &ys, &TrainConfig::quick());
            assert!(report.final_loss.is_finite(), "{agg}");
            assert!(report.final_loss < report.loss_history[0], "{agg}");
        }
    }

    #[test]
    fn convergence_stops_early() {
        let (op, xs, ys) = toy_dataset();
        let mut model = GraphModel::new(ModelKind::ICNet, Aggregation::Nn, 7, 8, 6, 5);
        let cfg = TrainConfig {
            max_epochs: 5000,
            tol: 10.0, // absurdly lax: should stop after `patience` epochs
            patience: 4,
            ..TrainConfig::default()
        };
        let report = train(&mut model, &op, &xs, &ys, &cfg);
        assert!(report.converged);
        // The first epoch always improves on the infinite initial best, so
        // convergence fires after `patience` + 1 epochs.
        assert_eq!(report.epochs_run, 5);
    }

    #[test]
    fn deterministic_given_seeds() {
        let (op, xs, ys) = toy_dataset();
        let run = || {
            let mut model = GraphModel::new(ModelKind::ICNet, Aggregation::Nn, 7, 8, 6, 7);
            train(&mut model, &op, &xs, &ys, &TrainConfig::quick());
            model.predict(&op, &xs[3])
        };
        assert_eq!(run(), run());
    }
}
