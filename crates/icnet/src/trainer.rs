//! Mini-batch training loop (the paper's Algorithm 1: ADAM, random batches,
//! stop on loss convergence) with two interchangeable gradient engines.
//!
//! [`GradEngine::Batched`] (the default) packs each mini-batch into one
//! block-diagonal [`BatchedGraph`] and runs a single forward/backward tape
//! for the whole batch; [`GradEngine::PerInstance`] is the reference engine
//! — one tape per instance, gradients reduced in batch-position order. Both
//! produce **bit-identical** parameters: the batched tape's segment ops fold
//! per-graph gradient contributions in exactly the batch order the reference
//! reduction uses (DESIGN.md §10).
//!
//! # Determinism
//!
//! With `jobs > 1` the work is parallelized over row bands (batched engine)
//! or instances (reference engine), and in both cases every f64 addition
//! happens in an order fixed by the batch, not by thread scheduling —
//! `jobs = 1` and `jobs = 8` produce bit-identical parameters for the same
//! seed (see DESIGN.md §6d).
//!
//! # Batch weighting
//!
//! Every optimizer step scales the summed batch gradient by
//! `1 / min(batch_size, n)` — the *nominal* batch size — including the final
//! partial batch of an epoch when `n` is not divisible by `batch_size`. An
//! earlier revision scaled each chunk by `1 / chunk_len`, which made a
//! leftover instance in a size-1 final chunk weigh as much as an entire full
//! batch; the fix changes trajectories for such datasets, so the checkpoint
//! fingerprint is versioned and stale checkpoints are refused loudly.

use crate::batch::BatchedGraph;
use crate::checkpoint::{self, TrainCheckpoint};
use crate::model::GraphModel;
use crate::pool_lease::PoolLease;
use attack::CancelToken;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use tensor::{Adam, BufferPool, CsrMatrix, Matrix, Optimizer, Tape};

/// Which gradient engine [`train_with`] runs each mini-batch through.
///
/// The two engines are bit-identical (test-enforced); `Batched` amortizes
/// the per-tape overhead (parameter insertion, operator transpose, node
/// bookkeeping) over the whole batch and is the default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GradEngine {
    /// One tape per mini-batch over a block-diagonal [`BatchedGraph`].
    #[default]
    Batched,
    /// One tape per instance, gradients reduced in batch-position order —
    /// the reference engine the batched path is validated against.
    PerInstance,
}

/// Training hyper-parameters.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// ADAM learning rate.
    pub lr: f64,
    /// Hard cap on epochs.
    pub max_epochs: usize,
    /// Instances per batch.
    pub batch_size: usize,
    /// Convergence: stop when the epoch loss improves by less than `tol`
    /// for `patience` consecutive epochs (Algorithm 1 line 13).
    pub tol: f64,
    /// Epochs of sub-`tol` improvement tolerated before stopping.
    pub patience: usize,
    /// Batch shuffling seed.
    pub seed: u64,
    /// Worker threads for gradient computation; `0` and `1` both mean
    /// serial. Every value produces bit-identical parameters.
    pub jobs: usize,
    /// Gradient engine; both variants are bit-identical, see [`GradEngine`].
    pub engine: GradEngine,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            lr: 1e-3,
            max_epochs: 300,
            batch_size: 16,
            tol: 1e-5,
            patience: 10,
            seed: 0,
            jobs: 1,
            engine: GradEngine::Batched,
        }
    }
}

impl TrainConfig {
    /// A small budget for tests and doc examples.
    pub fn quick() -> Self {
        TrainConfig {
            max_epochs: 30,
            patience: 3,
            ..TrainConfig::default()
        }
    }
}

/// Where [`train_with`] persists end-of-epoch state, and whether it should
/// restore from an existing checkpoint first.
#[derive(Debug, Clone)]
pub struct TrainCheckpointSpec {
    /// Checkpoint file path (rewritten atomically every epoch).
    pub path: String,
    /// When true, an existing checkpoint at `path` (with a matching
    /// hyper-parameter fingerprint) is restored before training continues;
    /// when false, training starts fresh and overwrites it.
    pub resume: bool,
}

/// Runtime controls for [`train_with`] — everything [`train`] defaults off:
/// cooperative interruption and crash-safe epoch checkpoints.
#[derive(Debug, Clone, Default)]
pub struct TrainControl {
    /// Polled at every epoch boundary; when it fires, training returns with
    /// [`TrainReport::interrupted`] set, the model keeping its end-of-epoch
    /// parameters (which the checkpoint, when configured, already persists).
    pub cancel: Option<CancelToken>,
    /// End-of-epoch checkpointing; `None` = no persistence.
    pub checkpoint: Option<TrainCheckpointSpec>,
    /// Watchdog heartbeat, beaten once per mini-batch. A training run whose
    /// heartbeat stops advancing has hung below the epoch-boundary cancel
    /// polling (a stuck gradient worker, a pathological batch); the owning
    /// `budget::Watchdog` can then trip [`TrainControl::cancel`].
    pub heartbeat: Option<budget::Heartbeat>,
}

/// What happened during training.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Epochs actually run (including epochs restored from a checkpoint).
    pub epochs_run: usize,
    /// Mean squared error over the training set after the last fully
    /// finite epoch (`f64::INFINITY` if training diverged before completing
    /// one).
    pub final_loss: f64,
    /// Per-epoch mean training loss. Contains only finite values: a
    /// divergent epoch is not recorded (see [`TrainReport::diverged`]).
    pub loss_history: Vec<f64>,
    /// Whether the tolerance criterion (not the epoch cap) ended training.
    pub converged: bool,
    /// Whether training stopped because a batch produced a non-finite loss
    /// or gradient. The model keeps its last healthy parameters — the
    /// poisoned update is never applied.
    pub diverged: bool,
    /// Whether training stopped at an epoch boundary because the
    /// [`TrainControl::cancel`] token fired.
    pub interrupted: bool,
    /// First checkpoint-save failure, when one occurred. Saving is
    /// best-effort: a failed save costs durability of that epoch, never the
    /// training run itself.
    pub checkpoint_error: Option<String>,
    /// Peak logical bytes live on any one batch's autodiff tape (node
    /// values + gradients + pooled buffers), sampled at the end of each
    /// backward pass. Logical bytes are bytes requested, not allocator
    /// overhead, so the value is deterministic for a given run (see the
    /// `budget` crate). Zero when no batch ran (e.g. resuming a converged
    /// checkpoint).
    pub peak_tape_bytes: u64,
}

/// Squared-error loss and per-parameter gradients for one training instance
/// (its own tape; `None` where no gradient reached a parameter). The tape
/// allocates from `pool` and surrenders its buffers back on completion, so
/// a loop over instances reuses one set of buffers.
fn instance_gradient(
    model: &GraphModel,
    op: &Arc<CsrMatrix>,
    x: &Matrix,
    y: f64,
    pool: &mut BufferPool,
) -> (f64, Vec<Option<Matrix>>, u64) {
    let mut tape = Tape::with_pool(std::mem::take(pool));
    let ids = model.insert_params(&mut tape);
    let pred = model.forward(&mut tape, &ids, op, x);
    let target = tape.constant(Matrix::scalar(y));
    let diff = tape.sub(pred, target);
    let sq = tape.hadamard(diff, diff);
    tape.backward(sq);
    let loss = tape.value(sq).get(0, 0);
    let grads = ids.iter().map(|&id| tape.try_grad(id).cloned()).collect();
    // Liveness peaks here: every node value and every materialized gradient
    // coexist right after the backward pass.
    let tape_bytes = tape.logical_bytes();
    *pool = tape.into_pool();
    (loss, grads, tape_bytes)
}

/// The gradient weight each instance carries in an optimizer step: the
/// reciprocal of the *nominal* batch size, `min(batch_size, n)`. A final
/// partial chunk uses the same scale as a full one, so every instance of an
/// epoch has equal influence regardless of which chunk it lands in.
fn batch_scale(batch_size: usize, num_instances: usize) -> f64 {
    1.0 / batch_size.max(1).min(num_instances.max(1)) as f64
}

/// Summed batch loss and scaled per-parameter gradients for one mini-batch
/// — the per-instance reference engine, computed with `jobs` worker
/// threads. Each instance's gradient enters the sum with weight `scale`
/// (see [`batch_scale`]).
///
/// Workers drop each instance's result into the slot of its batch position;
/// the reduction then walks the slots in order. The sequence of f64
/// additions is thus fixed by the batch, not by thread scheduling, which is
/// what makes parallel training bit-identical to serial.
#[allow(clippy::too_many_arguments)]
fn batch_gradients(
    model: &GraphModel,
    op: &Arc<CsrMatrix>,
    xs: &[Matrix],
    ys: &[f64],
    batch: &[usize],
    scale: f64,
    jobs: usize,
    pool: &mut BufferPool,
) -> (f64, Vec<Matrix>, u64) {
    type InstanceResult = Option<(f64, Vec<Option<Matrix>>, u64)>;
    let jobs = jobs.clamp(1, batch.len());
    let mut results: Vec<InstanceResult> = if jobs <= 1 {
        batch
            .iter()
            .map(|&i| Some(instance_gradient(model, op, &xs[i], ys[i], pool)))
            .collect()
    } else {
        let slots: Mutex<Vec<InstanceResult>> = Mutex::new(vec![None; batch.len()]);
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(|| {
                    // Worker-local pool: buffers recycle across the
                    // instances this worker processes (pooling never
                    // changes results, so work stealing stays safe).
                    let mut pool = BufferPool::new();
                    loop {
                        let k = next.fetch_add(1, Ordering::Relaxed);
                        if k >= batch.len() {
                            break;
                        }
                        let i = batch[k];
                        let out = instance_gradient(model, op, &xs[i], ys[i], &mut pool);
                        slots.lock().expect("gradient worker panicked")[k] = Some(out);
                    }
                });
            }
        });
        slots.into_inner().expect("gradient worker panicked")
    };

    let mut loss_sum = 0.0;
    let mut peak_tape_bytes = 0u64;
    let mut grads: Vec<Matrix> = model
        .params()
        .iter()
        .map(|p| Matrix::zeros(p.rows(), p.cols()))
        .collect();
    for slot in &mut results {
        let (loss, gs, tape_bytes) = slot.take().expect("every batch slot filled");
        loss_sum += loss;
        peak_tape_bytes = peak_tape_bytes.max(tape_bytes);
        for (acc, g) in grads.iter_mut().zip(gs) {
            if let Some(g) = g {
                acc.axpy(scale, &g);
            }
        }
    }
    (loss_sum, grads, peak_tape_bytes)
}

/// Summed batch loss and scaled per-parameter gradients for one mini-batch
/// via the batched engine: the chunk's instances are stacked onto the
/// block-diagonal `layout` and one tape computes the whole batch. The tape's
/// segment ops apply `scale` per graph in batch order, reproducing the
/// reference engine's reduction bit for bit.
#[allow(clippy::too_many_arguments)]
fn batched_gradients(
    model: &GraphModel,
    layout: &BatchedGraph,
    xs: &[Matrix],
    ys: &[f64],
    batch: &[usize],
    scale: f64,
    jobs: usize,
    pool: &mut BufferPool,
) -> (f64, Vec<Matrix>, u64) {
    let refs: Vec<&Matrix> = batch.iter().map(|&i| &xs[i]).collect();
    let x = layout.stack_features_pooled(&refs, pool);
    let targets = Matrix::from_vec(batch.len(), 1, batch.iter().map(|&i| ys[i]).collect());
    let mut tape = Tape::with_pool(std::mem::take(pool));
    tape.set_jobs(jobs);
    tape.seed_transpose(layout.operator(), layout.operator_transpose());
    let ids = model.insert_params(&mut tape);
    let pred = model.forward_batched(&mut tape, &ids, layout, x, scale);
    let target = tape.constant(targets);
    let diff = tape.sub(pred, target);
    let sq = tape.hadamard(diff, diff);
    // Summing the per-row squared errors walks them in batch order — the
    // same fold the reference engine's `loss_sum += loss` performs — and
    // seeds every row of the backward pass with gradient 1.0, exactly like
    // `backward(sq)` on a per-instance 1 x 1 tape.
    let total = tape.sum_all(sq);
    tape.backward(total);
    let loss_sum = tape.value(total).get(0, 0);
    let grads = ids
        .iter()
        .zip(model.params())
        .map(|(&id, p)| {
            tape.try_grad(id)
                .cloned()
                .unwrap_or_else(|| Matrix::zeros(p.rows(), p.cols()))
        })
        .collect();
    let tape_bytes = tape.logical_bytes();
    *pool = tape.into_pool();
    (loss_sum, grads, tape_bytes)
}

/// Trains `model` on instances `(xs[i], ys[i])` sharing the graph operator
/// `op`. Labels should already be on the scale the model predicts
/// (log-seconds for the default [`OutputHead::Identity`]).
///
/// If a batch produces a non-finite loss or gradient, training stops
/// immediately *before* applying the poisoned update and the report carries
/// `diverged: true` — the model keeps its last healthy parameters and the
/// loss history contains only finite values.
///
/// # Panics
///
/// Panics if `xs` and `ys` lengths differ or the training set is empty.
///
/// [`OutputHead::Identity`]: crate::OutputHead::Identity
pub fn train(
    model: &mut GraphModel,
    op: &Arc<CsrMatrix>,
    xs: &[Matrix],
    ys: &[f64],
    config: &TrainConfig,
) -> TrainReport {
    train_with(model, op, xs, ys, config, &TrainControl::default())
}

/// [`train`] with runtime controls: cooperative interruption via an
/// [`attack::CancelToken`] polled at every epoch boundary, and crash-safe
/// end-of-epoch checkpoints with bit-identical resume.
///
/// # Determinism of resume
///
/// A run interrupted after epoch *k* and resumed from its checkpoint
/// produces parameters bit-identical to an uninterrupted run: each epoch is
/// a pure function of (parameters, ADAM state, batch order), the checkpoint
/// serializes parameters and ADAM moments as exact bit patterns, and the
/// RNG position is restored by replaying the *k* recorded shuffles of the
/// evolving index vector — the cheapest way to reproduce both the RNG
/// stream position and the order-vector state without serializing either.
///
/// # Panics
///
/// Panics (in addition to [`train`]'s conditions) when resuming from a
/// checkpoint that exists but is corrupt, or whose hyper-parameter
/// fingerprint does not match `config` — silently training on from the
/// wrong state would be worse than stopping.
pub fn train_with(
    model: &mut GraphModel,
    op: &Arc<CsrMatrix>,
    xs: &[Matrix],
    ys: &[f64],
    config: &TrainConfig,
    control: &TrainControl,
) -> TrainReport {
    assert_eq!(xs.len(), ys.len(), "xs/ys length mismatch");
    assert!(!xs.is_empty(), "empty training set");
    let scale = batch_scale(config.batch_size, xs.len());
    // Batched engine: one block-diagonal layout (operator + transpose) per
    // distinct chunk length, built once and reused across every epoch. An
    // epoch sees at most two lengths: the nominal batch size and the final
    // partial chunk.
    let mut layouts: Vec<(usize, BatchedGraph)> = Vec::new();
    // One buffer pool for the whole run: every step's tape hands its node
    // buffers back, so steady-state training allocates nothing per batch.
    // The pool itself is leased from a thread-local that outlives this call,
    // so back-to-back runs (serve retraining, evaluation sweeps) skip even
    // the first-batch warm-up.
    let mut lease = PoolLease::acquire();
    let pool = lease.pool();
    let mut optimizer = Adam::new(config.lr);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut order: Vec<usize> = (0..xs.len()).collect();
    let mut history = Vec::new();
    let mut best = f64::INFINITY;
    let mut stall = 0usize;
    let mut start_epoch = 0usize;
    let mut checkpoint_error: Option<String> = None;
    let mut peak_tape_bytes = 0u64;
    let fingerprint = checkpoint::fingerprint(config, xs.len(), model.params());

    if let Some(spec) = control.checkpoint.as_ref().filter(|s| s.resume) {
        match checkpoint::load(&spec.path) {
            Ok(None) => {} // nothing saved yet: a fresh run
            Ok(Some(ckpt)) => {
                assert_eq!(
                    ckpt.fingerprint, fingerprint,
                    "training checkpoint `{}` belongs to different \
                     hyper-parameters / shapes; refusing to resume from it",
                    spec.path
                );
                for (i, (dst, src)) in model.params_mut().iter_mut().zip(&ckpt.params).enumerate() {
                    assert_eq!(dst.shape(), src.shape(), "param {i} shape mismatch");
                    *dst = src.clone();
                }
                optimizer.restore(ckpt.adam_t, ckpt.adam_m, ckpt.adam_v);
                history = ckpt.history;
                best = ckpt.best;
                stall = ckpt.stall;
                start_epoch = ckpt.epochs_done;
                // Replay the completed epochs' shuffles: this advances the
                // RNG stream *and* evolves the order vector exactly as the
                // original run did.
                for _ in 0..ckpt.epochs_done {
                    order.shuffle(&mut rng);
                }
                if ckpt.converged {
                    // The checkpointed run already satisfied the tolerance
                    // criterion; there is nothing left to train.
                    return TrainReport {
                        epochs_run: ckpt.epochs_done,
                        final_loss: *history.last().expect("converged run has epochs"),
                        loss_history: history,
                        converged: true,
                        diverged: false,
                        interrupted: false,
                        checkpoint_error: None,
                        peak_tape_bytes: 0,
                    };
                }
            }
            Err(message) => panic!(
                "unusable training checkpoint `{}`: {message} (delete it to start fresh)",
                spec.path
            ),
        }
    }

    for epoch in start_epoch..config.max_epochs {
        // `train.interrupt` models an operator interrupt (or the process
        // dying) landing exactly at this epoch boundary; it takes the same
        // drain-and-return path as a real tripped token, so the
        // crash-then-resume matrix is drivable from a fault plan alone.
        let injected_interrupt = faults::inject("train.interrupt")
            .map(|fault| match fault.action {
                faults::Action::Die => true,
                _ => fault.unsupported("train.interrupt"),
            })
            .unwrap_or(false);
        if injected_interrupt
            || control
                .cancel
                .as_ref()
                .is_some_and(CancelToken::is_cancelled)
        {
            // Epoch-boundary interruption: the model holds the end-of-epoch
            // parameters the checkpoint (when configured) just persisted, so
            // a resumed run continues bit-identically from here.
            return TrainReport {
                epochs_run: epoch,
                final_loss: history.last().copied().unwrap_or(f64::INFINITY),
                loss_history: history,
                converged: false,
                diverged: false,
                interrupted: true,
                checkpoint_error,
                peak_tape_bytes,
            };
        }
        // NaN poisoning fires on the first batch of the epoch, upstream of
        // the divergence guard it exists to exercise.
        let mut poison = faults::inject("train.epoch");
        if let Some(fault) = &poison {
            if fault.action != faults::Action::Nan {
                fault.unsupported("train.epoch");
            }
        }
        // Observation-only instrumentation: the clock and the gradient-norm
        // accumulator are reads; neither feeds back into the update, so
        // tracing cannot change the trained parameters.
        let observing = obs::enabled();
        let epoch_started = observing.then(std::time::Instant::now);
        let mut grad_sq = 0.0;
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0;
        for batch in order.chunks(config.batch_size.max(1)) {
            if let Some(hb) = &control.heartbeat {
                hb.beat();
            }
            let (mut batch_loss, grads, tape_bytes) = match config.engine {
                GradEngine::Batched => {
                    let layout = match layouts.iter().position(|(len, _)| *len == batch.len()) {
                        Some(pos) => &layouts[pos].1,
                        None => {
                            layouts.push((batch.len(), BatchedGraph::replicate(op, batch.len())));
                            &layouts.last().expect("just pushed").1
                        }
                    };
                    batched_gradients(model, layout, xs, ys, batch, scale, config.jobs, pool)
                }
                GradEngine::PerInstance => {
                    batch_gradients(model, op, xs, ys, batch, scale, config.jobs, pool)
                }
            };
            peak_tape_bytes = peak_tape_bytes.max(tape_bytes);
            if poison.take().is_some() {
                batch_loss = f64::NAN;
            }
            // Divergence guard. NaN compares false against everything, so
            // without this check a poisoned loss sails through the
            // convergence test below and training runs all max_epochs
            // returning NaN parameters with no signal.
            if !batch_loss.is_finite() || grads.iter().any(|g| !g.is_finite()) {
                return TrainReport {
                    epochs_run: epoch + 1,
                    final_loss: history.last().copied().unwrap_or(f64::INFINITY),
                    loss_history: history,
                    converged: false,
                    diverged: true,
                    interrupted: false,
                    checkpoint_error,
                    peak_tape_bytes,
                };
            }
            epoch_loss += batch_loss;
            if observing {
                grad_sq += grads
                    .iter()
                    .map(|g| {
                        let n = g.norm();
                        n * n
                    })
                    .sum::<f64>();
            }
            optimizer.step(model.params_mut(), &grads);
        }
        epoch_loss /= xs.len() as f64;
        if observing {
            obs::emit(obs::EventKind::TrainEpoch {
                epoch: epoch as u64,
                loss: epoch_loss,
                grad_norm: grad_sq.sqrt(),
                wall_ns: epoch_started
                    .map(|t| t.elapsed().as_nanos() as u64)
                    .unwrap_or(0),
            });
        }
        history.push(epoch_loss);
        let mut converged_now = false;
        if best - epoch_loss < config.tol {
            stall += 1;
            if stall >= config.patience {
                converged_now = true;
            }
        } else {
            stall = 0;
        }
        if !converged_now {
            // Matches the historical loop exactly: `best` was only ever
            // updated on the path that continued to the next epoch.
            best = best.min(epoch_loss);
        }
        if let Some(spec) = control.checkpoint.as_ref() {
            let state = TrainCheckpoint {
                fingerprint,
                epochs_done: epoch + 1,
                converged: converged_now,
                stall,
                best,
                history: history.clone(),
                params: model.params().to_vec(),
                adam_t: optimizer.state().0,
                adam_m: optimizer.state().1.to_vec(),
                adam_v: optimizer.state().2.to_vec(),
            };
            match checkpoint::save(&spec.path, &state) {
                Ok(()) => obs::emit(obs::EventKind::TrainCheckpointSaved {
                    epoch: (epoch + 1) as u64,
                }),
                // Best-effort durability: losing this epoch's save costs
                // resumability, not the run; report the first failure.
                Err(message) => {
                    checkpoint_error.get_or_insert(message);
                }
            }
        }
        if converged_now {
            return TrainReport {
                epochs_run: epoch + 1,
                final_loss: epoch_loss,
                loss_history: history,
                converged: true,
                diverged: false,
                interrupted: false,
                checkpoint_error,
                peak_tape_bytes,
            };
        }
    }
    TrainReport {
        epochs_run: config.max_epochs,
        final_loss: *history.last().expect("at least one epoch"),
        loss_history: history,
        converged: false,
        diverged: false,
        interrupted: false,
        checkpoint_error,
        peak_tape_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{encode_features, FeatureSet};
    use crate::graph::CircuitGraph;
    use crate::model::{ModelKind, OutputHead};
    use crate::Aggregation;
    use netlist::GateId;

    /// Synthetic task on c17: label = #selected gates (training must drive
    /// the loss down substantially).
    fn toy_dataset() -> (Arc<CsrMatrix>, Vec<Matrix>, Vec<f64>) {
        let circuit = netlist::c17();
        let graph = CircuitGraph::from_circuit(&circuit);
        let op = Arc::new(ModelKind::ICNet.operator(&graph));
        let logic: Vec<GateId> = circuit
            .iter()
            .filter(|(_, g)| !g.kind().is_input())
            .map(|(id, _)| id)
            .collect();
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        // All subsets of the first 5 logic gates.
        for mask in 0u32..32 {
            let sel: Vec<GateId> = (0..5)
                .filter(|&b| (mask >> b) & 1 == 1)
                .map(|b| logic[b])
                .collect();
            xs.push(encode_features(&circuit, &sel, FeatureSet::All));
            ys.push(sel.len() as f64 * 0.5);
        }
        (op, xs, ys)
    }

    #[test]
    fn training_reduces_loss() {
        let (op, xs, ys) = toy_dataset();
        let mut model = GraphModel::new(ModelKind::ICNet, Aggregation::Nn, 7, 12, 8, 3);
        let cfg = TrainConfig {
            max_epochs: 120,
            lr: 5e-3,
            ..TrainConfig::default()
        };
        let report = train(&mut model, &op, &xs, &ys, &cfg);
        assert!(
            report.final_loss < 0.1 * report.loss_history[0],
            "loss did not drop: {} -> {}",
            report.loss_history[0],
            report.final_loss
        );
        assert!(!report.diverged);
    }

    #[test]
    fn sum_and_mean_aggregations_also_train() {
        let (op, xs, ys) = toy_dataset();
        for agg in [Aggregation::Sum, Aggregation::Mean] {
            let mut model = GraphModel::new(ModelKind::ICNet, agg, 7, 8, 6, 4);
            let report = train(&mut model, &op, &xs, &ys, &TrainConfig::quick());
            assert!(report.final_loss.is_finite(), "{agg}");
            assert!(report.final_loss < report.loss_history[0], "{agg}");
        }
    }

    #[test]
    fn convergence_stops_early() {
        let (op, xs, ys) = toy_dataset();
        let mut model = GraphModel::new(ModelKind::ICNet, Aggregation::Nn, 7, 8, 6, 5);
        let cfg = TrainConfig {
            max_epochs: 5000,
            tol: 10.0, // absurdly lax: should stop after `patience` epochs
            patience: 4,
            ..TrainConfig::default()
        };
        let report = train(&mut model, &op, &xs, &ys, &cfg);
        assert!(report.converged);
        // The first epoch always improves on the infinite initial best, so
        // convergence fires after `patience` + 1 epochs.
        assert_eq!(report.epochs_run, 5);
    }

    #[test]
    fn deterministic_given_seeds() {
        let (op, xs, ys) = toy_dataset();
        let run = || {
            let mut model = GraphModel::new(ModelKind::ICNet, Aggregation::Nn, 7, 8, 6, 7);
            train(&mut model, &op, &xs, &ys, &TrainConfig::quick());
            model.predict(&op, &xs[3])
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn parallel_training_is_bit_identical_to_serial() {
        let (op, xs, ys) = toy_dataset();
        let run = |jobs: usize| {
            let mut model = GraphModel::new(ModelKind::ICNet, Aggregation::Nn, 7, 8, 6, 9);
            let cfg = TrainConfig {
                jobs,
                ..TrainConfig::quick()
            };
            let report = train(&mut model, &op, &xs, &ys, &cfg);
            (report.loss_history, model.predict_batch(&op, &xs))
        };
        let (serial_history, serial_preds) = run(1);
        for jobs in [2, 4] {
            let (history, preds) = run(jobs);
            assert_eq!(
                serial_history, history,
                "loss history differs at jobs={jobs}"
            );
            assert_eq!(serial_preds, preds, "predictions differ at jobs={jobs}");
        }
    }

    #[test]
    fn batched_engine_is_bit_identical_to_per_instance() {
        let (op, xs, ys) = toy_dataset();
        // batch_size 12 over 32 instances: every epoch ends in a partial
        // chunk of 8, so the equivalence covers both layouts.
        let run = |engine: GradEngine| {
            let mut model = GraphModel::new(ModelKind::ICNet, Aggregation::Nn, 7, 8, 6, 13);
            let cfg = TrainConfig {
                engine,
                batch_size: 12,
                ..TrainConfig::quick()
            };
            let report = train(&mut model, &op, &xs, &ys, &cfg);
            (report.loss_history, model.predict_batch(&op, &xs))
        };
        let (batched_history, batched_preds) = run(GradEngine::Batched);
        let (reference_history, reference_preds) = run(GradEngine::PerInstance);
        assert_eq!(batched_history, reference_history, "loss history differs");
        assert_eq!(batched_preds, reference_preds, "predictions differ");
    }

    #[test]
    fn batched_engine_is_bit_identical_for_all_model_kinds() {
        let circuit = netlist::c17();
        let graph = CircuitGraph::from_circuit(&circuit);
        let (_, xs, ys) = toy_dataset();
        for kind in [
            ModelKind::Gcn,
            ModelKind::ChebNet { k: 3 },
            ModelKind::ICNet,
        ] {
            let op = Arc::new(kind.operator(&graph));
            for agg in [Aggregation::Sum, Aggregation::Mean, Aggregation::Nn] {
                let run = |engine: GradEngine| {
                    let mut model = GraphModel::new(kind, agg, 7, 8, 6, 17);
                    let cfg = TrainConfig {
                        engine,
                        max_epochs: 3,
                        batch_size: 5, // partial final chunk of 2
                        ..TrainConfig::default()
                    };
                    let report = train(&mut model, &op, &xs, &ys, &cfg);
                    (report.loss_history, model.predict_batch(&op, &xs))
                };
                assert_eq!(
                    run(GradEngine::Batched),
                    run(GradEngine::PerInstance),
                    "{kind} {agg}"
                );
            }
        }
    }

    #[test]
    fn parallel_batched_training_is_bit_identical_to_serial() {
        let (op, xs, ys) = toy_dataset();
        let run = |jobs: usize| {
            let mut model = GraphModel::new(ModelKind::ICNet, Aggregation::Nn, 7, 8, 6, 9);
            let cfg = TrainConfig {
                jobs,
                batch_size: 12, // partial final chunk exercises both layouts
                ..TrainConfig::quick()
            };
            let report = train(&mut model, &op, &xs, &ys, &cfg);
            (report.loss_history, model.predict_batch(&op, &xs))
        };
        let serial = run(1);
        for jobs in [2, 4] {
            assert_eq!(serial, run(jobs), "jobs={jobs}");
        }
    }

    #[test]
    fn training_reports_peak_tape_bytes_and_beats_its_heartbeat() {
        let (op, xs, ys) = toy_dataset();
        let mut model = GraphModel::new(ModelKind::ICNet, Aggregation::Nn, 7, 8, 6, 11);
        let cfg = TrainConfig {
            max_epochs: 3,
            ..TrainConfig::default()
        };
        let dog = budget::Watchdog::new(budget::WatchdogConfig {
            stall_after: std::time::Duration::from_secs(60),
            poll: std::time::Duration::from_millis(50),
        });
        let hb = dog.watch("trainer-test", |_| {});
        let control = TrainControl {
            heartbeat: Some(hb.clone()),
            ..TrainControl::default()
        };
        let report = train_with(&mut model, &op, &xs, &ys, &cfg, &control);
        assert!(
            report.peak_tape_bytes > 0,
            "a run with batches must record a tape high-water mark"
        );
        assert!(
            hb.ticks() > 0,
            "the trainer must beat its heartbeat once per mini-batch"
        );
        assert!(!hb.tripped());
        // Deterministic: a second identical run reads the same peak.
        let mut model2 = GraphModel::new(ModelKind::ICNet, Aggregation::Nn, 7, 8, 6, 11);
        let report2 = train(&mut model2, &op, &xs, &ys, &cfg);
        assert_eq!(report.peak_tape_bytes, report2.peak_tape_bytes);
    }

    #[test]
    fn partial_final_batch_is_weighted_by_nominal_batch_size() {
        // 2-instance-overlap construction: the dataset's last instance
        // duplicates its first, so whichever chunk each copy lands in, their
        // per-step gradient contributions must be interchangeable. Under
        // `batch_size == n` every instance carries weight 1/n; under
        // `batch_size == n - 1` the epoch splits into a full chunk and a
        // size-1 leftover, and the leftover must carry 1/(n-1) — not the
        // full instance gradient the old `1/chunk_len` scaling gave it.
        let (op, xs, ys) = toy_dataset();
        let n = 5usize;
        let mut xs: Vec<Matrix> = xs[..n - 1].to_vec();
        let mut ys: Vec<f64> = ys[..n - 1].to_vec();
        xs.push(xs[0].clone());
        ys.push(ys[0]);
        let model = GraphModel::new(ModelKind::ICNet, Aggregation::Nn, 7, 8, 6, 19);

        // The raw (unweighted) gradient of the duplicated instance.
        let mut pool = BufferPool::new();
        let (_, raw, _) = batch_gradients(&model, &op, &xs, &ys, &[n - 1], 1.0, 1, &mut pool);

        // The leftover chunk under batch_size = n - 1.
        let scale = batch_scale(n - 1, n);
        let (_, leftover, _) =
            batch_gradients(&model, &op, &xs, &ys, &[n - 1], scale, 1, &mut pool);
        let expected: Vec<Matrix> = raw
            .iter()
            .map(|g| {
                let mut acc = Matrix::zeros(g.rows(), g.cols());
                acc.axpy(scale, g);
                acc
            })
            .collect();
        assert_eq!(
            leftover, expected,
            "a size-1 leftover chunk must scale by 1/(n-1), not 1/1"
        );
        // And the batched engine agrees bit for bit.
        let layout = BatchedGraph::replicate(&op, 1);
        let (_, batched, _) =
            batched_gradients(&model, &layout, &xs, &ys, &[n - 1], scale, 1, &mut pool);
        assert_eq!(batched, leftover, "engines disagree on the leftover chunk");

        // Under batch_size == n the duplicate pair each carry 1/n: the
        // full-batch gradient equals the sum of all five instance gradients
        // at that weight, so the pair's joint weight is exactly 2/n.
        let full_scale = batch_scale(n, n);
        assert_eq!(full_scale, 1.0 / n as f64);
        let (_, full, _) = batch_gradients(
            &model,
            &op,
            &xs,
            &ys,
            &[0, 1, 2, 3, 4],
            full_scale,
            1,
            &mut pool,
        );
        let mut summed: Vec<Matrix> = model
            .params()
            .iter()
            .map(|p| Matrix::zeros(p.rows(), p.cols()))
            .collect();
        for i in 0..n {
            let (_, g, _) = batch_gradients(&model, &op, &xs, &ys, &[i], 1.0, 1, &mut pool);
            for (acc, g) in summed.iter_mut().zip(&g) {
                acc.axpy(full_scale, g);
            }
        }
        assert_eq!(full, summed);
    }

    #[test]
    fn batch_scale_uses_the_nominal_batch_size() {
        assert_eq!(batch_scale(16, 100), 1.0 / 16.0);
        assert_eq!(batch_scale(16, 10), 1.0 / 10.0, "clamped to the set size");
        assert_eq!(batch_scale(0, 10), 1.0, "batch_size 0 means 1");
        assert_eq!(batch_scale(4, 0), 1.0, "degenerate empty set");
    }

    #[test]
    fn divergence_is_detected_and_reported() {
        // An absurd learning rate with the exponential head (the paper's
        // Eq. 3) overflows on the second epoch: the first ADAM step throws
        // the logit past ~710, exp(logit) hits +inf and the squared
        // residual follows. Before the guard this ran all max_epochs and
        // silently returned NaN parameters.
        let (op, xs, ys) = toy_dataset();
        let mut model = GraphModel::new(ModelKind::ICNet, Aggregation::Nn, 7, 8, 6, 11)
            .with_output(OutputHead::Exp);
        let cfg = TrainConfig {
            lr: 500.0,
            max_epochs: 50,
            batch_size: 32, // one batch per epoch: epoch 1 completes cleanly
            ..TrainConfig::default()
        };
        let report = train(&mut model, &op, &xs, &ys, &cfg);
        assert!(report.diverged, "lr=500 with Exp head must diverge");
        assert!(
            !report.loss_history.is_empty(),
            "the pre-divergence epoch must be recorded"
        );
        assert!(!report.converged);
        assert!(report.epochs_run < cfg.max_epochs, "must stop immediately");
        assert!(
            report.loss_history.iter().all(|l| l.is_finite()),
            "history may only contain finite losses: {:?}",
            report.loss_history
        );
        assert!(report.final_loss.is_finite() || report.final_loss == f64::INFINITY);
        assert!(!report.final_loss.is_nan(), "final_loss must never be NaN");
        // The poisoned update was never applied.
        assert!(
            model.params().iter().all(|p| p.is_finite()),
            "model must keep its last healthy parameters"
        );
    }
}
