//! Model persistence: a trained [`GraphModel`] serializes to a small,
//! versioned, human-readable text format, so a defender can train once and
//! ship the predictor (the paper's deployment story: prediction is a single
//! forward pass of a stored model).

use crate::aggregate::Aggregation;
use crate::model::{GraphModel, ModelKind, OutputHead};
use std::fmt;
use tensor::Matrix;

/// Error produced by [`GraphModel::from_text`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseModelError {
    /// 1-based line of the failure.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "model parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseModelError {}

const FORMAT_VERSION: u32 = 1;

impl GraphModel {
    /// Serializes the model (architecture + parameters) to text.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "icnet-model v{FORMAT_VERSION}");
        let kind = match self.kind {
            ModelKind::Gcn => "gcn".to_owned(),
            ModelKind::ChebNet { k } => format!("chebnet {k}"),
            ModelKind::ICNet => "icnet".to_owned(),
        };
        let _ = writeln!(out, "kind {kind}");
        let _ = writeln!(
            out,
            "aggregation {}",
            self.aggregation.label().to_lowercase()
        );
        let _ = writeln!(
            out,
            "output {}",
            match self.output {
                OutputHead::Identity => "identity",
                OutputHead::Exp => "exp",
            }
        );
        let _ = writeln!(out, "features {}", self.num_features());
        let _ = writeln!(out, "params {}", self.params().len());
        for p in self.params() {
            let _ = write!(out, "matrix {} {}", p.rows(), p.cols());
            for v in p.as_slice() {
                let _ = write!(out, " {v:e}");
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Parses a model previously written by [`GraphModel::to_text`].
    ///
    /// # Errors
    ///
    /// Returns [`ParseModelError`] for version mismatches, malformed
    /// headers, or parameter shapes inconsistent with the architecture.
    pub fn from_text(text: &str) -> Result<GraphModel, ParseModelError> {
        let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l.trim()));
        let err = |line: usize, message: &str| ParseModelError {
            line,
            message: message.to_owned(),
        };
        let (l, header) = lines.next().ok_or_else(|| err(1, "empty input"))?;
        if header != format!("icnet-model v{FORMAT_VERSION}") {
            return Err(err(l, "unsupported header/version"));
        }

        let mut kind: Option<ModelKind> = None;
        let mut aggregation: Option<Aggregation> = None;
        let mut output = OutputHead::Identity;
        let mut features: Option<usize> = None;
        let mut num_params: Option<usize> = None;
        let mut params: Vec<Matrix> = Vec::new();

        for (l, line) in lines {
            if line.is_empty() {
                continue;
            }
            let mut tokens = line.split_whitespace();
            match tokens.next() {
                Some("kind") => {
                    kind = Some(match tokens.next() {
                        Some("gcn") => ModelKind::Gcn,
                        Some("icnet") => ModelKind::ICNet,
                        Some("chebnet") => {
                            let k = tokens
                                .next()
                                .and_then(|t| t.parse().ok())
                                .ok_or_else(|| err(l, "chebnet requires an order"))?;
                            ModelKind::ChebNet { k }
                        }
                        _ => return Err(err(l, "unknown model kind")),
                    });
                }
                Some("aggregation") => {
                    aggregation = Some(match tokens.next() {
                        Some("sum") => Aggregation::Sum,
                        Some("mean") => Aggregation::Mean,
                        Some("nn") => Aggregation::Nn,
                        _ => return Err(err(l, "unknown aggregation")),
                    });
                }
                Some("output") => {
                    output = match tokens.next() {
                        Some("identity") => OutputHead::Identity,
                        Some("exp") => OutputHead::Exp,
                        _ => return Err(err(l, "unknown output head")),
                    };
                }
                Some("features") => {
                    features = tokens.next().and_then(|t| t.parse().ok());
                    if features.is_none() {
                        return Err(err(l, "invalid feature count"));
                    }
                }
                Some("params") => {
                    num_params = tokens.next().and_then(|t| t.parse().ok());
                    if num_params.is_none() {
                        return Err(err(l, "invalid parameter count"));
                    }
                }
                Some("matrix") => {
                    let rows: usize = tokens
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| err(l, "invalid matrix rows"))?;
                    let cols: usize = tokens
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| err(l, "invalid matrix cols"))?;
                    let data: Vec<f64> = tokens
                        .map(|t| t.parse::<f64>())
                        .collect::<Result<_, _>>()
                        .map_err(|_| err(l, "invalid matrix value"))?;
                    if data.len() != rows * cols {
                        return Err(err(l, "matrix data length mismatch"));
                    }
                    params.push(Matrix::from_vec(rows, cols, data));
                }
                Some(other) => return Err(err(l, &format!("unknown directive `{other}`"))),
                None => {}
            }
        }

        let kind = kind.ok_or_else(|| err(0, "missing kind"))?;
        let aggregation = aggregation.ok_or_else(|| err(0, "missing aggregation"))?;
        let features = features.ok_or_else(|| err(0, "missing features"))?;
        let expected = num_params.ok_or_else(|| err(0, "missing params"))?;
        if params.len() != expected {
            return Err(err(0, "parameter count mismatch"));
        }
        GraphModel::from_parts(kind, aggregation, output, features, params)
            .map_err(|message| err(0, &message))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{encode_features, FeatureSet};
    use crate::graph::CircuitGraph;
    use std::sync::Arc;

    fn round_trip(kind: ModelKind, agg: Aggregation) {
        let model = GraphModel::new(kind, agg, 7, 8, 8, 5).with_output(OutputHead::Exp);
        let text = model.to_text();
        let parsed = GraphModel::from_text(&text).expect("round trips");

        // Same architecture, same predictions.
        let circuit = netlist::c17();
        let graph = CircuitGraph::from_circuit(&circuit);
        let op = Arc::new(kind.operator(&graph));
        let x = encode_features(&circuit, &[circuit.find("n10").unwrap()], FeatureSet::All);
        assert_eq!(
            model.predict(&op, &x),
            parsed.predict(&op, &x),
            "{kind} {agg}"
        );
    }

    #[test]
    fn round_trips_every_architecture() {
        for kind in [
            ModelKind::Gcn,
            ModelKind::ChebNet { k: 3 },
            ModelKind::ICNet,
        ] {
            for agg in [Aggregation::Sum, Aggregation::Mean, Aggregation::Nn] {
                round_trip(kind, agg);
            }
        }
    }

    #[test]
    fn rejects_bad_headers_and_shapes() {
        assert!(GraphModel::from_text("").is_err());
        assert!(GraphModel::from_text("icnet-model v999\n").is_err());
        let model = GraphModel::new(ModelKind::ICNet, Aggregation::Sum, 7, 8, 8, 0);
        let text = model.to_text();
        // Drop the last parameter line: count mismatch.
        let truncated: Vec<&str> = text.lines().collect();
        let broken = truncated[..truncated.len() - 1].join("\n");
        assert!(GraphModel::from_text(&broken).is_err());
        // Corrupt a number.
        let corrupt = text.replace("matrix 7", "matrix seven");
        assert!(GraphModel::from_text(&corrupt).is_err());
    }

    #[test]
    fn error_display_mentions_line() {
        let e = GraphModel::from_text("nonsense").unwrap_err();
        assert!(e.to_string().contains("line 1"));
    }
}
