//! Model persistence: a trained [`GraphModel`] serializes to a small,
//! versioned, human-readable text format, so a defender can train once and
//! ship the predictor (the paper's deployment story: prediction is a single
//! forward pass of a stored model).

use crate::aggregate::Aggregation;
use crate::model::{GraphModel, ModelKind, OutputHead};
use std::fmt;
use tensor::Matrix;

/// Error produced by [`GraphModel::from_text`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseModelError {
    /// 1-based line of the failure.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "model parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseModelError {}

/// v2 added the mandatory checksum footer; v1 files (no footer) are
/// rejected as unsupported rather than silently trusted.
const FORMAT_VERSION: u32 = 2;

impl GraphModel {
    /// Serializes the model (architecture + parameters) to text.
    ///
    /// The last line is a `checksum <fnv1a>` footer over every preceding
    /// byte, so a truncated or bit-flipped file is rejected at load time
    /// no matter where the damage landed — a prediction service must not
    /// boot on half a model.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "icnet-model v{FORMAT_VERSION}");
        let kind = match self.kind {
            ModelKind::Gcn => "gcn".to_owned(),
            ModelKind::ChebNet { k } => format!("chebnet {k}"),
            ModelKind::ICNet => "icnet".to_owned(),
        };
        let _ = writeln!(out, "kind {kind}");
        let _ = writeln!(
            out,
            "aggregation {}",
            self.aggregation.label().to_lowercase()
        );
        let _ = writeln!(
            out,
            "output {}",
            match self.output {
                OutputHead::Identity => "identity",
                OutputHead::Exp => "exp",
            }
        );
        let _ = writeln!(out, "features {}", self.num_features());
        let _ = writeln!(out, "params {}", self.params().len());
        for p in self.params() {
            let _ = write!(out, "matrix {} {}", p.rows(), p.cols());
            for v in p.as_slice() {
                let _ = write!(out, " {v:e}");
            }
            let _ = writeln!(out);
        }
        let _ = writeln!(
            out,
            "checksum {:016x}",
            faults::fnv1a(faults::FNV_OFFSET, out.as_bytes())
        );
        out
    }

    /// Parses a model previously written by [`GraphModel::to_text`].
    ///
    /// # Errors
    ///
    /// Returns [`ParseModelError`] for version mismatches, malformed
    /// headers, or parameter shapes inconsistent with the architecture.
    pub fn from_text(text: &str) -> Result<GraphModel, ParseModelError> {
        let err = |line: usize, message: &str| ParseModelError {
            line,
            message: message.to_owned(),
        };
        // A complete file ends in a newline; its absence means the tail of
        // the file (at minimum) was lost to a torn or short write.
        if !text.ends_with('\n') {
            return Err(err(
                text.lines().count().max(1),
                "missing trailing newline (file truncated?)",
            ));
        }
        // Verify the checksum footer before interpreting anything else:
        // the last non-empty line must be `checksum <fnv1a of all prior
        // bytes>`. Truncation at *any* byte offset either damages the
        // footer itself or changes the bytes it covers — both are caught.
        let last_line_start = match text.trim_end().rfind('\n') {
            Some(i) => i + 1,
            None => 0,
        };
        let footer_line_no = text[..last_line_start].lines().count() + 1;
        let footer = text[last_line_start..].trim();
        let expected = footer
            .strip_prefix("checksum ")
            .filter(|hex| hex.len() == 16)
            .and_then(|hex| u64::from_str_radix(hex, 16).ok())
            .ok_or_else(|| {
                err(
                    footer_line_no,
                    "missing checksum footer (file truncated or predates v2?)",
                )
            })?;
        let actual = faults::fnv1a(faults::FNV_OFFSET, &text.as_bytes()[..last_line_start]);
        if actual != expected {
            return Err(err(
                footer_line_no,
                &format!("checksum mismatch: footer {expected:016x}, content {actual:016x}"),
            ));
        }
        let body = &text[..last_line_start];

        let mut lines = body.lines().enumerate().map(|(i, l)| (i + 1, l.trim()));
        let (l, header) = lines.next().ok_or_else(|| err(1, "empty input"))?;
        if header != format!("icnet-model v{FORMAT_VERSION}") {
            return Err(err(l, "unsupported header/version"));
        }

        let mut kind: Option<ModelKind> = None;
        let mut aggregation: Option<Aggregation> = None;
        let mut output = OutputHead::Identity;
        let mut features: Option<usize> = None;
        let mut num_params: Option<usize> = None;
        let mut params: Vec<Matrix> = Vec::new();

        for (l, line) in lines {
            if line.is_empty() {
                continue;
            }
            let mut tokens = line.split_whitespace();
            match tokens.next() {
                Some("kind") => {
                    kind = Some(match tokens.next() {
                        Some("gcn") => ModelKind::Gcn,
                        Some("icnet") => ModelKind::ICNet,
                        Some("chebnet") => {
                            let k = tokens
                                .next()
                                .and_then(|t| t.parse().ok())
                                .ok_or_else(|| err(l, "chebnet requires an order"))?;
                            ModelKind::ChebNet { k }
                        }
                        _ => return Err(err(l, "unknown model kind")),
                    });
                }
                Some("aggregation") => {
                    aggregation = Some(match tokens.next() {
                        Some("sum") => Aggregation::Sum,
                        Some("mean") => Aggregation::Mean,
                        Some("nn") => Aggregation::Nn,
                        _ => return Err(err(l, "unknown aggregation")),
                    });
                }
                Some("output") => {
                    output = match tokens.next() {
                        Some("identity") => OutputHead::Identity,
                        Some("exp") => OutputHead::Exp,
                        _ => return Err(err(l, "unknown output head")),
                    };
                }
                Some("features") => {
                    features = tokens.next().and_then(|t| t.parse().ok());
                    if features.is_none() {
                        return Err(err(l, "invalid feature count"));
                    }
                }
                Some("params") => {
                    num_params = tokens.next().and_then(|t| t.parse().ok());
                    if num_params.is_none() {
                        return Err(err(l, "invalid parameter count"));
                    }
                }
                Some("matrix") => {
                    let rows: usize = tokens
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| err(l, "invalid matrix rows"))?;
                    let cols: usize = tokens
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| err(l, "invalid matrix cols"))?;
                    let data: Vec<f64> = tokens
                        .map(|t| t.parse::<f64>())
                        .collect::<Result<_, _>>()
                        .map_err(|_| err(l, "invalid matrix value"))?;
                    if data.len() != rows * cols {
                        return Err(err(l, "matrix data length mismatch"));
                    }
                    params.push(Matrix::from_vec(rows, cols, data));
                }
                Some(other) => return Err(err(l, &format!("unknown directive `{other}`"))),
                None => {}
            }
        }

        let kind = kind.ok_or_else(|| err(0, "missing kind"))?;
        let aggregation = aggregation.ok_or_else(|| err(0, "missing aggregation"))?;
        let features = features.ok_or_else(|| err(0, "missing features"))?;
        let expected = num_params.ok_or_else(|| err(0, "missing params"))?;
        if params.len() != expected {
            return Err(err(0, "parameter count mismatch"));
        }
        GraphModel::from_parts(kind, aggregation, output, features, params)
            .map_err(|message| err(0, &message))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{encode_features, FeatureSet};
    use crate::graph::CircuitGraph;
    use std::sync::Arc;

    fn round_trip(kind: ModelKind, agg: Aggregation) {
        let model = GraphModel::new(kind, agg, 7, 8, 8, 5).with_output(OutputHead::Exp);
        let text = model.to_text();
        let parsed = GraphModel::from_text(&text).expect("round trips");

        // Same architecture, same predictions.
        let circuit = netlist::c17();
        let graph = CircuitGraph::from_circuit(&circuit);
        let op = Arc::new(kind.operator(&graph));
        let x = encode_features(&circuit, &[circuit.find("n10").unwrap()], FeatureSet::All);
        assert_eq!(
            model.predict(&op, &x),
            parsed.predict(&op, &x),
            "{kind} {agg}"
        );
    }

    #[test]
    fn round_trips_every_architecture() {
        for kind in [
            ModelKind::Gcn,
            ModelKind::ChebNet { k: 3 },
            ModelKind::ICNet,
        ] {
            for agg in [Aggregation::Sum, Aggregation::Mean, Aggregation::Nn] {
                round_trip(kind, agg);
            }
        }
    }

    #[test]
    fn rejects_bad_headers_and_shapes() {
        assert!(GraphModel::from_text("").is_err());
        assert!(GraphModel::from_text("icnet-model v999\n").is_err());
        let model = GraphModel::new(ModelKind::ICNet, Aggregation::Sum, 7, 8, 8, 0);
        let text = model.to_text();
        // Drop the last parameter line: count mismatch.
        let truncated: Vec<&str> = text.lines().collect();
        let broken = truncated[..truncated.len() - 1].join("\n");
        assert!(GraphModel::from_text(&broken).is_err());
        // Corrupt a number.
        let corrupt = text.replace("matrix 7", "matrix seven");
        assert!(GraphModel::from_text(&corrupt).is_err());
    }

    #[test]
    fn error_display_mentions_line() {
        let e = GraphModel::from_text("nonsense").unwrap_err();
        assert!(e.to_string().contains("line 1"));
    }

    #[test]
    fn truncation_at_every_byte_offset_is_rejected() {
        // The exhaustive version of the torn-write test: no prefix of a
        // valid file may parse, because a torn or short write can stop at
        // any byte. The format is ASCII, so every offset is a char boundary.
        let text = GraphModel::new(ModelKind::Gcn, Aggregation::Mean, 7, 4, 4, 11).to_text();
        assert!(text.is_ascii(), "format must stay ASCII for this test");
        assert!(GraphModel::from_text(&text).is_ok());
        for cut in 0..text.len() {
            assert!(
                GraphModel::from_text(&text[..cut]).is_err(),
                "prefix of {cut}/{} bytes must not parse",
                text.len()
            );
        }
    }

    #[test]
    fn bitflips_and_legacy_files_are_rejected() {
        let model = GraphModel::new(ModelKind::ICNet, Aggregation::Nn, 7, 8, 8, 3);
        let text = model.to_text();
        // Flip one digit inside a matrix line: structure still parses, the
        // checksum catches it.
        let flipped = text.replacen("matrix 7", "matrix 9", 1);
        assert_ne!(flipped, text);
        let e = GraphModel::from_text(&flipped).unwrap_err();
        assert!(e.message.contains("checksum mismatch"), "{e}");
        // A v1 file (old header, no footer) is unsupported, not trusted.
        let mut legacy: Vec<String> = text
            .lines()
            .filter(|l| !l.starts_with("checksum "))
            .map(|l| l.to_owned())
            .collect();
        legacy[0] = "icnet-model v1".to_owned();
        let legacy = legacy.join("\n") + "\n";
        assert!(GraphModel::from_text(&legacy).is_err());
        // The footer is the last line and self-consistent.
        let footer = text.lines().last().unwrap();
        assert!(footer.starts_with("checksum "), "{footer}");
    }
}
