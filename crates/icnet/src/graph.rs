use netlist::Circuit;
use tensor::CsrMatrix;

/// The connectivity of one circuit, as consumed by the graph models.
///
/// Built once per circuit and shared across every obfuscation instance of
/// that circuit (the paper evaluates thousands of encryption placements on
/// a single netlist, so the operator is heavily reused).
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitGraph {
    num_nodes: usize,
    /// Directed edges `(from, to)` following signal flow.
    edges: Vec<(u32, u32)>,
}

impl CircuitGraph {
    /// Extracts the gate-connectivity graph of a circuit.
    pub fn from_circuit(circuit: &Circuit) -> Self {
        CircuitGraph {
            num_nodes: circuit.num_gates(),
            edges: circuit
                .edges()
                .into_iter()
                .map(|(a, b)| (a.index() as u32, b.index() as u32))
                .collect(),
        }
    }

    /// Number of gates (graph nodes).
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Symmetrized adjacency matrix, optionally with self-loops.
    ///
    /// Circuits are directed, but convolution needs information to flow both
    /// with and against signal direction (an obfuscated gate affects the
    /// SAT hardness of its fan-in cone too), so `A := A_dir + A_dirᵀ`.
    pub fn adjacency(&self, self_loops: bool) -> CsrMatrix {
        let mut triplets: Vec<(usize, usize, f64)> =
            Vec::with_capacity(self.edges.len() * 2 + self.num_nodes);
        for &(a, b) in &self.edges {
            triplets.push((a as usize, b as usize, 1.0));
            triplets.push((b as usize, a as usize, 1.0));
        }
        if self_loops {
            for i in 0..self.num_nodes {
                triplets.push((i, i, 1.0));
            }
        }
        // Duplicate edges (reconvergent fan-out) collapse to weight >= 1;
        // clamp back to 0/1 as the paper uses an unweighted matrix.
        let raw = CsrMatrix::from_triplets(self.num_nodes, self.num_nodes, &triplets);
        let clamped: Vec<(usize, usize, f64)> = raw.iter().map(|(r, c, _)| (r, c, 1.0)).collect();
        CsrMatrix::from_triplets(self.num_nodes, self.num_nodes, &clamped)
    }

    /// The Kipf-Welling GCN operator `D̂^-1/2 (A + I) D̂^-1/2`.
    pub fn gcn_norm(&self) -> CsrMatrix {
        let a = self.adjacency(true);
        let inv_sqrt: Vec<f64> = a
            .row_sums()
            .iter()
            .map(|&d| if d > 0.0 { d.powf(-0.5) } else { 0.0 })
            .collect();
        a.scale_rows(&inv_sqrt).scale_cols(&inv_sqrt)
    }

    /// The ChebNet operator: the scaled normalized Laplacian
    /// `L̃ = L_norm - I = -D^-1/2 A D^-1/2` (using the standard `λ_max ≈ 2`
    /// approximation).
    pub fn scaled_laplacian(&self) -> CsrMatrix {
        let a = self.adjacency(false);
        let inv_sqrt: Vec<f64> = a
            .row_sums()
            .iter()
            .map(|&d| if d > 0.0 { d.powf(-0.5) } else { 0.0 })
            .collect();
        let norm = a.scale_rows(&inv_sqrt).scale_cols(&inv_sqrt);
        let neg: Vec<(usize, usize, f64)> = norm.iter().map(|(r, c, v)| (r, c, -v)).collect();
        CsrMatrix::from_triplets(self.num_nodes, self.num_nodes, &neg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c17_graph() -> CircuitGraph {
        CircuitGraph::from_circuit(&netlist::c17())
    }

    #[test]
    fn shape_matches_circuit() {
        let g = c17_graph();
        assert_eq!(g.num_nodes(), 11);
        assert_eq!(g.num_edges(), 12);
    }

    #[test]
    fn adjacency_is_symmetric_unweighted() {
        let a = c17_graph().adjacency(false).to_dense();
        for r in 0..11 {
            for c in 0..11 {
                assert_eq!(a.get(r, c), a.get(c, r), "symmetry at ({r},{c})");
                assert!(a.get(r, c) == 0.0 || a.get(r, c) == 1.0);
            }
            assert_eq!(a.get(r, r), 0.0, "no self loop at {r}");
        }
    }

    #[test]
    fn self_loops_set_diagonal() {
        let a = c17_graph().adjacency(true).to_dense();
        for r in 0..11 {
            assert_eq!(a.get(r, r), 1.0);
        }
    }

    #[test]
    fn gcn_norm_rows_are_bounded() {
        let n = c17_graph().gcn_norm();
        // Symmetric normalization keeps entries in (0, 1].
        for (_, _, v) in n.iter() {
            assert!(v > 0.0 && v <= 1.0);
        }
        // Known property: row sums of the normalized operator are <= sqrt(d+1).
        for s in n.row_sums() {
            assert!(s > 0.0 && s < 4.0);
        }
    }

    #[test]
    fn scaled_laplacian_is_negative_normalized_adjacency() {
        let g = c17_graph();
        let l = g.scaled_laplacian().to_dense();
        for r in 0..11 {
            assert_eq!(l.get(r, r), 0.0);
            for c in 0..11 {
                assert!(l.get(r, c) <= 0.0);
                assert_eq!(l.get(r, c), l.get(c, r));
            }
        }
    }
}
