use std::fmt;

/// How gate representations collapse into one graph-level vector
/// (the paper's Θgate / Θfeat stage).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Aggregation {
    /// Unweighted sum over gates.
    Sum,
    /// Mean over gates.
    Mean,
    /// Learned soft attention over both features (Θfeat) and gates (Θgate)
    /// — the "-NN" rows of Tables I/II.
    #[default]
    Nn,
}

impl Aggregation {
    /// Table label used by the experiment harness.
    pub fn label(&self) -> &'static str {
        match self {
            Aggregation::Sum => "Sum",
            Aggregation::Mean => "Mean",
            Aggregation::Nn => "NN",
        }
    }
}

impl fmt::Display for Aggregation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(Aggregation::Sum.label(), "Sum");
        assert_eq!(Aggregation::Mean.to_string(), "Mean");
        assert_eq!(Aggregation::default(), Aggregation::Nn);
    }
}
