//! Minimal flag parsing shared by the experiment binaries.

/// Parsed command-line options common to the experiment binaries.
#[derive(Debug, Clone)]
pub struct Options {
    /// Circuit profile to evaluate (default: the paper's `c1529`).
    pub profile: String,
    /// Number of labeled instances to generate.
    pub instances: usize,
    /// Per-attack solver work budget.
    pub budget: u64,
    /// GNN training epochs.
    pub epochs: usize,
    /// Master seed.
    pub seed: u64,
    /// Largest per-instance key-gate count for Dataset-1-style sweeps.
    ///
    /// The paper sweeps 1..=350, but completing a 350-LUT attack is a
    /// multi-hour solve; the default 40 keeps most attacks uncensored while
    /// preserving the exponential-growth regime (see `DESIGN.md` §4).
    pub keys_max: usize,
    /// Quick mode: small circuit, few instances (sanity runs / CI).
    pub quick: bool,
    /// Output directory for CSV artifacts.
    pub out_dir: String,
    /// Worker threads, for both dataset generation and the evaluation
    /// suite's (method × feature-set × aggregation) grid. Results are
    /// byte-identical for every value (see `dataset::generate_parallel`
    /// and `harness::run_mse_suite_jobs`).
    pub jobs: usize,
    /// Checkpoint log to record finished attacks in and resume from.
    pub resume: Option<String>,
    /// Per-attack wall-clock deadline in seconds. An attack that outlives
    /// it is retried with an escalated deadline (deterministic budgets stay
    /// fixed) and, failing that, quarantined — never labeled, because a
    /// wall-clock verdict is machine-dependent.
    pub deadline: Option<f64>,
    /// Extra attempts per instance after the first (retry policy runs
    /// `retries + 1` attempts total, each at escalated deadlines).
    pub retries: usize,
    /// Keep sweeping past quarantined instances (default). With
    /// `--no-keep-going` the first quarantine aborts the whole sweep.
    pub keep_going: bool,
    /// Write a structured JSONL event trace to this path (see `crates/obs`).
    pub trace: Option<String>,
    /// Echo coarse progress events (instances, cells, stages) to stderr as
    /// they happen.
    pub progress: bool,
    /// Deterministic fault-injection plan (see `crates/faults`), e.g.
    /// `seed=7;checkpoint.append:torn@o2;dataset.worker:die@c5`. Faults are
    /// disabled entirely when absent.
    pub fault_plan: Option<String>,
    /// Per-attack logical-byte budget (see the `budget` crate). An attack
    /// that exceeds it degrades (learnt-DB pressure first) and, failing
    /// that, is quarantined `MemoryExceeded` — never labeled, because a
    /// budget-perturbed work count is not the unbudgeted ground truth.
    pub mem_budget: Option<u64>,
    /// Watchdog stall window in seconds: a worker whose progress heartbeat
    /// stops advancing for this long is cancelled and its instance
    /// quarantined `Stalled` (catches non-polling hangs that deadlines
    /// cannot see).
    pub watchdog_stall: Option<f64>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            profile: "c1529".to_owned(),
            instances: 150,
            budget: 200_000_000,
            epochs: 300,
            seed: 7,
            keys_max: 40,
            quick: false,
            out_dir: "results".to_owned(),
            jobs: 1,
            resume: None,
            deadline: None,
            retries: dataset::RetryPolicy::default().max_attempts - 1,
            keep_going: true,
            trace: None,
            progress: false,
            fault_plan: None,
            mem_budget: None,
            watchdog_stall: None,
        }
    }
}

impl Options {
    /// Parses `--flag value` style arguments; unknown flags abort with a
    /// usage message. `--quick` rescales to a small, fast configuration.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Options {
        Options::parse_extended(args, "", |_, _| false)
    }

    /// Like [`Options::parse`], but lets a binary register extra flags
    /// without re-implementing the shared ones (the `--trace` / `--progress`
    /// / `--fault-plan` / `--jobs` plumbing stays identical everywhere).
    ///
    /// `extra` is called for each flag the shared parser does not recognise,
    /// with the flag text and a value-puller for `--flag value` style; it
    /// returns whether it consumed the flag. Unconsumed flags abort with the
    /// shared usage message plus `extra_usage`.
    pub fn parse_extended(
        args: impl IntoIterator<Item = String>,
        extra_usage: &str,
        mut extra: impl FnMut(&str, &mut dyn FnMut(&str) -> String) -> bool,
    ) -> Options {
        let mut opts = Options::default();
        let mut args = args.into_iter();
        while let Some(flag) = args.next() {
            let mut value = |name: &str| {
                args.next()
                    .unwrap_or_else(|| panic!("flag {name} requires a value"))
            };
            match flag.as_str() {
                "--profile" => opts.profile = value("--profile"),
                "--instances" => {
                    opts.instances = value("--instances").parse().expect("usize instances")
                }
                "--budget" => opts.budget = value("--budget").parse().expect("u64 budget"),
                "--epochs" => opts.epochs = value("--epochs").parse().expect("usize epochs"),
                "--seed" => opts.seed = value("--seed").parse().expect("u64 seed"),
                "--keys-max" => {
                    opts.keys_max = value("--keys-max").parse().expect("usize keys-max")
                }
                "--out" => opts.out_dir = value("--out"),
                "--jobs" => {
                    opts.jobs = value("--jobs").parse().expect("usize jobs");
                    assert!(opts.jobs >= 1, "--jobs must be at least 1");
                }
                "--resume" => opts.resume = Some(value("--resume")),
                "--deadline" => {
                    let secs: f64 = value("--deadline").parse().expect("seconds deadline");
                    assert!(
                        secs.is_finite() && secs > 0.0,
                        "--deadline must be a positive number of seconds"
                    );
                    opts.deadline = Some(secs);
                }
                "--retries" => opts.retries = value("--retries").parse().expect("usize retries"),
                "--keep-going" => opts.keep_going = true,
                "--no-keep-going" => opts.keep_going = false,
                "--trace" => opts.trace = Some(value("--trace")),
                "--progress" => opts.progress = true,
                "--fault-plan" => opts.fault_plan = Some(value("--fault-plan")),
                "--mem-budget" => {
                    let bytes: u64 = value("--mem-budget").parse().expect("bytes mem-budget");
                    assert!(bytes > 0, "--mem-budget must be a positive byte count");
                    opts.mem_budget = Some(bytes);
                }
                "--watchdog-stall" => {
                    let secs: f64 = value("--watchdog-stall").parse().expect("seconds stall");
                    assert!(
                        secs.is_finite() && secs > 0.0,
                        "--watchdog-stall must be a positive number of seconds"
                    );
                    opts.watchdog_stall = Some(secs);
                }
                "--quick" => opts.quick = true,
                other => {
                    if extra(other, &mut value) {
                        continue;
                    }
                    eprintln!(
                        "unknown flag `{other}`\nflags: --profile <name> --instances <n> \
                         --budget <work> --epochs <n> --seed <n> --keys-max <n> \
                         --out <dir> --jobs <n> --resume <path> --deadline <secs> \
                         --retries <n> --keep-going --no-keep-going \
                         --mem-budget <bytes> --watchdog-stall <secs> \
                         --trace <path> --progress --fault-plan <spec> --quick{}{extra_usage}",
                        if extra_usage.is_empty() { "" } else { " " },
                    );
                    std::process::exit(2);
                }
            }
        }
        if opts.quick {
            opts.profile = "c432".to_owned();
            opts.instances = opts.instances.min(40);
            opts.budget = opts.budget.min(3_000_000);
            opts.epochs = opts.epochs.min(200);
            opts.keys_max = opts.keys_max.min(30);
        }
        opts
    }

    /// Parses the process arguments (skipping the binary name).
    pub fn from_env() -> Options {
        Options::parse(std::env::args().skip(1))
    }

    /// Starts the shared binary runtime: the observability sink (always
    /// collecting, so the end-of-run profile is available; JSONL trace under
    /// `--trace`, live progress under `--progress`), the `--fault-plan`
    /// injection plan (surfaced as `fault.injected` obs events), and the
    /// SIGINT handler (first Ctrl-C trips [`interrupt_token`] for a graceful
    /// drain-and-checkpoint shutdown; the second hard-exits). Pair with
    /// [`finish_observability`] at the end of `main`.
    pub fn init_runtime(&self) {
        obs::init(obs::ObsConfig {
            trace: self.trace.clone(),
            progress: self.progress,
        });
        if let Some(spec) = &self.fault_plan {
            let observe: faults::Observer = |site, action, occurrence| {
                obs::emit(obs::EventKind::FaultInjected {
                    site: site.to_owned(),
                    action,
                    occurrence,
                });
            };
            if let Err(e) = faults::arm_str(spec, Some(observe)) {
                eprintln!("invalid --fault-plan: {e}");
                std::process::exit(2);
            }
        }
        install_interrupt_handler();
    }

    /// Applies the shared attack and supervision flags to a dataset
    /// configuration: work budget, per-solve conflict cap, wall-clock
    /// deadline, master seed, retry policy, and keep-going. Fields with
    /// per-binary semantics (profile, key range, instance count) stay with
    /// the caller.
    pub fn configure(&self, config: &mut dataset::DatasetConfig) {
        config.attack.work_budget = Some(self.budget);
        config.attack.conflicts_per_solve = Some(200_000);
        config.attack.deadline = self.deadline.map(std::time::Duration::from_secs_f64);
        config.attack.mem_budget = self.mem_budget;
        config.watchdog_stall = self.watchdog_stall.map(std::time::Duration::from_secs_f64);
        config.seed = self.seed;
        config.retry.max_attempts = self.retries + 1;
        config.keep_going = self.keep_going;
        config.cancel = Some(interrupt_token().clone());
    }
}

/// Exit status of a run stopped by SIGINT after draining and checkpointing
/// (the conventional 128 + SIGINT).
pub const INTERRUPT_EXIT_CODE: i32 = 130;

static INTERRUPT: std::sync::OnceLock<attack::CancelToken> = std::sync::OnceLock::new();

/// The process-wide interrupt token: tripped by the first SIGINT, polled by
/// the dataset sweep and the training loop. Usable without
/// [`Options::init_runtime`] (it simply never trips).
pub fn interrupt_token() -> &'static attack::CancelToken {
    INTERRUPT.get_or_init(attack::CancelToken::default)
}

#[cfg(unix)]
fn install_interrupt_handler() {
    use std::sync::atomic::{AtomicBool, Ordering};

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
        fn _exit(code: i32) -> !;
    }
    const SIGINT: i32 = 2;
    static SIGINT_SEEN: AtomicBool = AtomicBool::new(false);

    // Async-signal-safety: the handler only touches atomics (the `swap`
    // below, the token's flag) and `_exit` — no allocation, locks, or stdio.
    // `interrupt_token()` is forced before `signal` so the handler's
    // `INTERRUPT.get()` can never race initialization.
    extern "C" fn on_sigint(_signum: i32) {
        if SIGINT_SEEN.swap(true, Ordering::SeqCst) {
            unsafe { _exit(INTERRUPT_EXIT_CODE) }
        }
        if let Some(token) = INTERRUPT.get() {
            token.cancel();
        }
    }

    let _ = interrupt_token();
    unsafe {
        signal(SIGINT, on_sigint as extern "C" fn(i32) as usize);
    }
}

#[cfg(not(unix))]
fn install_interrupt_handler() {}

/// Graceful-interrupt epilogue for the binaries: when the first SIGINT has
/// tripped [`interrupt_token`], flush the observability sink (trace +
/// profile) and exit with [`INTERRUPT_EXIT_CODE`]. Call after every stage
/// that drains on cancellation; a no-op otherwise.
pub fn exit_if_interrupted() {
    if interrupt_token().is_cancelled() {
        eprintln!("# interrupted: progress checkpointed; rerun with the same flags to resume");
        finish_observability();
        std::process::exit(INTERRUPT_EXIT_CODE);
    }
}

/// Flushes the observability sink and prints the end-of-run profile (top
/// stages by wall time and by solver work) to stderr. No-op if
/// [`Options::init_observability`] was never called.
pub fn finish_observability() {
    if let Some(summary) = obs::finish() {
        eprint!("{}", summary.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Options {
        Options::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_are_paper_scale() {
        let o = parse(&[]);
        assert_eq!(o.profile, "c1529");
        assert_eq!(o.keys_max, 40);
        assert!(!o.quick);
    }

    #[test]
    fn keys_max_flag_parses() {
        let o = parse(&["--keys-max", "350"]);
        assert_eq!(o.keys_max, 350);
    }

    #[test]
    fn flags_override() {
        let o = parse(&["--profile", "c499", "--instances", "10", "--seed", "3"]);
        assert_eq!(o.profile, "c499");
        assert_eq!(o.instances, 10);
        assert_eq!(o.seed, 3);
    }

    #[test]
    fn jobs_and_resume_flags_parse() {
        let o = parse(&["--jobs", "4", "--resume", "sweep.ckpt"]);
        assert_eq!(o.jobs, 4);
        assert_eq!(o.resume.as_deref(), Some("sweep.ckpt"));
        let o = parse(&[]);
        assert_eq!(o.jobs, 1);
        assert_eq!(o.resume, None);
    }

    #[test]
    fn supervision_flags_parse() {
        let o = parse(&["--deadline", "2.5", "--retries", "3", "--no-keep-going"]);
        assert_eq!(o.deadline, Some(2.5));
        assert_eq!(o.retries, 3);
        assert!(!o.keep_going);
        let o = parse(&[]);
        assert_eq!(o.deadline, None);
        assert_eq!(o.retries, 1, "one retry by default");
        assert!(o.keep_going, "keep-going is the default");
    }

    #[test]
    fn configure_applies_the_shared_flags() {
        let o = parse(&[
            "--budget",
            "1234",
            "--seed",
            "9",
            "--deadline",
            "2",
            "--retries",
            "2",
            "--no-keep-going",
        ]);
        let mut config = dataset::DatasetConfig::quick_demo();
        let key_range = config.key_range;
        o.configure(&mut config);
        assert_eq!(config.attack.work_budget, Some(1234));
        assert_eq!(config.attack.conflicts_per_solve, Some(200_000));
        assert_eq!(
            config.attack.deadline,
            Some(std::time::Duration::from_secs(2))
        );
        assert_eq!(config.seed, 9);
        assert_eq!(config.retry.max_attempts, 3);
        assert!(!config.keep_going);
        assert_eq!(config.key_range, key_range, "key range untouched");
    }

    #[test]
    fn memory_and_watchdog_flags_parse_and_configure() {
        let o = parse(&["--mem-budget", "8000000", "--watchdog-stall", "30"]);
        assert_eq!(o.mem_budget, Some(8_000_000));
        assert_eq!(o.watchdog_stall, Some(30.0));
        let mut config = dataset::DatasetConfig::quick_demo();
        o.configure(&mut config);
        assert_eq!(config.attack.mem_budget, Some(8_000_000));
        assert_eq!(
            config.watchdog_stall,
            Some(std::time::Duration::from_secs(30))
        );
        let o = parse(&[]);
        assert_eq!(o.mem_budget, None, "no budget unless requested");
        assert_eq!(o.watchdog_stall, None, "no watchdog unless requested");
    }

    #[test]
    fn fault_plan_flag_parses() {
        let o = parse(&["--fault-plan", "seed=3;sat.solve:panic@o1"]);
        assert_eq!(o.fault_plan.as_deref(), Some("seed=3;sat.solve:panic@o1"));
        let o = parse(&[]);
        assert_eq!(o.fault_plan, None, "faults are off unless requested");
    }

    #[test]
    fn configure_wires_the_interrupt_token() {
        let mut config = dataset::DatasetConfig::quick_demo();
        parse(&[]).configure(&mut config);
        let token = config.cancel.expect("interrupt token installed");
        assert!(!token.is_cancelled());
    }

    #[test]
    fn trace_and_progress_flags_parse() {
        let o = parse(&["--trace", "out/trace.jsonl", "--progress"]);
        assert_eq!(o.trace.as_deref(), Some("out/trace.jsonl"));
        assert!(o.progress);
        let o = parse(&[]);
        assert_eq!(o.trace, None);
        assert!(!o.progress);
    }

    #[test]
    fn parse_extended_threads_unknown_flags_to_the_binary() {
        let mut addr = String::new();
        let mut burst = false;
        let o = Options::parse_extended(
            ["--addr", "127.0.0.1:9", "--seed", "11", "--burst"]
                .iter()
                .map(|s| s.to_string()),
            "--addr <host:port> --burst",
            |flag, value| match flag {
                "--addr" => {
                    addr = value("--addr");
                    true
                }
                "--burst" => {
                    burst = true;
                    true
                }
                _ => false,
            },
        );
        assert_eq!(addr, "127.0.0.1:9");
        assert!(burst);
        assert_eq!(o.seed, 11, "shared flags still parse");
    }

    #[test]
    fn quick_rescales() {
        let o = parse(&["--quick"]);
        assert_eq!(o.profile, "c432");
        assert!(o.instances <= 40);
        assert!(o.budget <= 3_000_000);
    }
}
