//! Regenerates **Table I**: regression MSE on Dataset 1 (1..=350 key gates).
//!
//! ```text
//! cargo run -p bench --release --bin table1 [-- --quick | --profile cXXXX --instances N ...]
//! ```

use bench::cli::Options;
use bench::harness::{format_table, results_to_csv, run_mse_suite_jobs};
use bench::methods::BaselineKind;
use dataset::DatasetConfig;
use std::time::Instant;

fn main() {
    let opts = Options::from_env();
    opts.init_observability();
    let mut config = DatasetConfig::dataset1(&opts.profile, opts.instances);
    opts.configure(&mut config);
    config.key_range = (1, opts.keys_max);
    println!("# Table I — MSE on Dataset 1");
    println!(
        "# profile={} instances={} key_range={:?} scheme={} budget={} epochs={}",
        opts.profile, opts.instances, config.key_range, config.scheme, opts.budget, opts.epochs
    );

    let t0 = Instant::now();
    let generate_stage = obs::stage("generate");
    let data = bench::harness::load_or_generate_parallel(
        &config,
        &opts.out_dir,
        opts.jobs,
        opts.resume.as_deref(),
    );
    drop(generate_stage);
    println!(
        "# generated {} instances in {:.1}s ({:.0}% censored)",
        data.instances.len(),
        t0.elapsed().as_secs_f64(),
        data.censored_fraction() * 100.0
    );

    let t1 = Instant::now();
    let suite_stage = obs::stage("suite");
    let results = run_mse_suite_jobs(
        &data,
        &BaselineKind::table1(),
        opts.epochs,
        opts.seed,
        opts.jobs,
    );
    drop(suite_stage);
    println!(
        "# evaluated {} cells in {:.1}s\n",
        results.len(),
        t1.elapsed().as_secs_f64()
    );
    print!("{}", format_table(&results));

    std::fs::create_dir_all(&opts.out_dir).expect("create output dir");
    let path = format!("{}/table1.csv", opts.out_dir);
    std::fs::write(&path, results_to_csv(&results)).expect("write csv");
    println!("\n# wrote {path}");
    bench::cli::finish_observability();
}
