//! Regenerates **Table I**: regression MSE on Dataset 1 (1..=350 key gates).
//!
//! ```text
//! cargo run -p bench --release --bin table1 [-- --quick | --profile cXXXX --instances N ...]
//! ```

use bench::cli::Options;
use bench::harness::{format_table, results_to_csv, run_mse_suite_ctl, SuiteControl};
use bench::methods::BaselineKind;
use dataset::DatasetConfig;
use std::time::Instant;

fn main() {
    let opts = Options::from_env();
    opts.init_runtime();
    let mut config = DatasetConfig::dataset1(&opts.profile, opts.instances);
    opts.configure(&mut config);
    config.key_range = (1, opts.keys_max);
    println!("# Table I — MSE on Dataset 1");
    println!(
        "# profile={} instances={} key_range={:?} scheme={} budget={} epochs={}",
        opts.profile, opts.instances, config.key_range, config.scheme, opts.budget, opts.epochs
    );

    let t0 = Instant::now();
    let generate_stage = obs::stage("generate");
    let data = bench::harness::load_or_generate_parallel(
        &config,
        &opts.out_dir,
        opts.jobs,
        opts.resume.as_deref(),
    );
    drop(generate_stage);
    println!(
        "# generated {} instances in {:.1}s ({:.0}% censored)",
        data.instances.len(),
        t0.elapsed().as_secs_f64(),
        data.censored_fraction() * 100.0
    );

    let t1 = Instant::now();
    let suite_stage = obs::stage("suite");
    // Training checkpoints ride the --resume flag: the dataset log at the
    // given path, per-cell training state under `<path>.train/`.
    let suite_ctl = SuiteControl {
        cancel: Some(bench::cli::interrupt_token().clone()),
        train_checkpoint_dir: opts.resume.as_ref().map(|p| format!("{p}.train")),
    };
    let results = run_mse_suite_ctl(
        &data,
        &BaselineKind::table1(),
        opts.epochs,
        opts.seed,
        opts.jobs,
        &suite_ctl,
    );
    drop(suite_stage);
    bench::cli::exit_if_interrupted();
    println!(
        "# evaluated {} cells in {:.1}s\n",
        results.len(),
        t1.elapsed().as_secs_f64()
    );
    print!("{}", format_table(&results));

    std::fs::create_dir_all(&opts.out_dir).expect("create output dir");
    let path = format!("{}/table1.csv", opts.out_dir);
    std::fs::write(&path, results_to_csv(&results)).expect("write csv");
    println!("\n# wrote {path}");
    bench::cli::finish_observability();
}
