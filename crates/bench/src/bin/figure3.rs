//! Regenerates **Figure 3**: predicted vs. real runtime on Dataset 1's test
//! split, one series per panel method (EN, LASSO, Linear, OMP, RR, SGD,
//! SVR-Poly, SVR-RBF, Theil, ICNet-NN), all-features setting.
//!
//! Emits one CSV per panel (`index,real,predicted`, log-seconds scale,
//! sorted by real value) ready for plotting.
//!
//! ```text
//! cargo run -p bench --release --bin figure3 [-- --quick ...]
//! ```

use bench::cli::Options;
use bench::harness::{evaluate_gnn_ctl, take, take_rows};
use bench::methods::BaselineKind;
use dataset::{
    flat_features, graph_features, train_test_split, DatasetConfig, FlatAggregation,
    StructureEncoding,
};
use icnet::{Aggregation, FeatureSet, ModelKind};
use std::fmt::Write as _;

fn main() {
    let opts = Options::from_env();
    opts.init_runtime();
    let mut config = DatasetConfig::dataset1(&opts.profile, opts.instances);
    opts.configure(&mut config);
    config.key_range = (1, opts.keys_max);
    println!("# Figure 3 — predictions vs real values (all-feature setting)");
    let generate_stage = obs::stage("generate");
    let data = bench::harness::load_or_generate_parallel(
        &config,
        &opts.out_dir,
        opts.jobs,
        opts.resume.as_deref(),
    );
    drop(generate_stage);
    let split = train_test_split(data.instances.len(), 0.25, opts.seed);
    let y = data.labels();
    let y_test = take(&y, &split.test);

    std::fs::create_dir_all(format!("{}/figure3", opts.out_dir)).expect("create output dir");
    let write_series = |name: &str, pred: &[f64]| {
        // Sort points by real value so the series reads like the figure.
        // total_cmp keeps the ordering well-defined even if a diverged
        // model produced non-finite predictions (NaN sorts last).
        let mut order: Vec<usize> = (0..y_test.len()).collect();
        order.sort_by(|&a, &b| y_test[a].total_cmp(&y_test[b]));
        let mut csv = String::from("index,real_log_seconds,predicted_log_seconds\n");
        for (rank, &i) in order.iter().enumerate() {
            let _ = writeln!(csv, "{rank},{},{}", y_test[i], pred[i]);
        }
        let path = format!("{}/figure3/{}.csv", opts.out_dir, name);
        std::fs::write(&path, csv).expect("write series");
        let mse = regress::metrics::mse(pred, &y_test);
        println!("  {name:<10} mse={mse:.4}  -> {path}");
    };

    // Baseline panels: all-features, sum aggregation.
    let baselines_stage = obs::stage("baselines");
    let x = flat_features(
        &data.circuit,
        &data.instances,
        FeatureSet::All,
        StructureEncoding::Adjacency,
        FlatAggregation::Sum,
    );
    let x_train = take_rows(&x, &split.train);
    let y_train = take(&y, &split.train);
    let x_test = take_rows(&x, &split.test);
    let panels = [
        (BaselineKind::En, "EN"),
        (BaselineKind::Lasso, "LASSO"),
        (BaselineKind::Lr, "Linear"),
        (BaselineKind::Omp, "OMP"),
        (BaselineKind::Rr, "RR"),
        (BaselineKind::Sgd, "SGD"),
        (BaselineKind::SvrPoly, "SVR_Poly"),
        (BaselineKind::SvrRbf, "SVR_RBF"),
        (BaselineKind::Theil, "Theil"),
    ];
    for (kind, name) in panels {
        let mut model = kind.build(&x_train);
        match model.fit(&x_train, &y_train) {
            Ok(()) => write_series(name, &model.predict(&x_test)),
            Err(e) => println!("  {name:<10} N/A ({e})"),
        }
    }
    drop(baselines_stage);

    // ICNet-NN panel.
    let icnet_stage = obs::stage("icnet");
    let config = icnet::TrainConfig {
        max_epochs: opts.epochs,
        lr: 5e-3,
        ..icnet::TrainConfig::default()
    };
    let control = icnet::TrainControl {
        cancel: Some(bench::cli::interrupt_token().clone()),
        checkpoint: None,
        heartbeat: None,
    };
    let (_, model) = evaluate_gnn_ctl(
        &data,
        &split,
        ModelKind::ICNet,
        Aggregation::Nn,
        FeatureSet::All,
        &config,
        opts.seed,
        &control,
    );
    bench::cli::exit_if_interrupted();
    let xs = graph_features(&data.circuit, &data.instances, FeatureSet::All);
    let pred: Vec<f64> = split.test.iter().map(|&i| model.predict(&xs[i])).collect();
    write_series("ICNet_NN", &pred);
    drop(icnet_stage);
    bench::cli::finish_observability();
}
