//! Cross-scheme generalization study: train ICNet on locking scheme A,
//! evaluate on scheme B, over every ordered scheme pair plus a pooled
//! training row, in a Table-II-style grid of test-set MSE / Pearson r.
//!
//! ```text
//! cargo run -p bench --release --bin crossgen -- \
//!     [--schemes xor,mux,lut4,antisat] [--key-width 5] [--quick ...]
//! ```
//!
//! Every scheme sweeps the *same* circuit with an equal total key-bit
//! budget: a scheme locking `b` key bits per gate draws its per-instance
//! gate count from `1..=max(1, keys_max / b)` (clamped to the scheme's
//! eligible gates), so a `xor` row and an `antisat` row see comparable key
//! material and the grid isolates the *structural* generalization gap.
//! Results are written to `<out>/BENCH_crossgen.json`; quarantined-out
//! schemes (e.g. Anti-SAT under a tight `--deadline`) render as N/A cells
//! instead of aborting the grid, and re-running with a raised `--deadline`
//! under the same `--resume` log re-attacks exactly those instances.

use bench::cli::{self, Options};
use bench::harness::{
    eval_gnn_metrics, format_mse, train_gnn_ctl, try_load_or_generate_parallel, TrainedGnn,
};
use dataset::{train_test_split, Dataset, DatasetConfig, Split};
use icnet::{Aggregation, FeatureSet, ModelKind, TrainConfig};
use obfuscate::SchemeKind;
use std::fmt::Write as _;
use std::time::Instant;

/// Fewest labeled instances a scheme needs before a 25 % test split still
/// leaves something to train on.
const MIN_INSTANCES: usize = 4;

fn parse_scheme(name: &str, key_width: usize) -> SchemeKind {
    match name {
        "xor" => SchemeKind::XorLock,
        "mux" => SchemeKind::MuxLock,
        "antisat" => SchemeKind::AntiSat { key_width },
        other => {
            if let Some(k) = other.strip_prefix("lut").and_then(|s| s.parse().ok()) {
                return SchemeKind::LutLock { lut_size: k };
            }
            eprintln!("unknown scheme `{other}` (expected xor, mux, lut<k>, or antisat)");
            std::process::exit(2);
        }
    }
}

/// One scheme's corpus plus everything derived from it.
struct SchemeRun {
    label: String,
    data: Dataset,
    quarantined: usize,
    key_range: (usize, usize),
    /// `None` when too few labels survived to split.
    split: Option<Split>,
    /// `None` when the scheme had no split or its training diverged.
    trained: Option<TrainedGnn>,
    note: String,
}

impl SchemeRun {
    fn median_of(&self, f: impl Fn(&dataset::Instance) -> f64) -> Option<f64> {
        let mut vals: Vec<f64> = self.data.instances.iter().map(f).collect();
        if vals.is_empty() {
            return None;
        }
        vals.sort_by(|a, b| a.partial_cmp(b).expect("finite stats"));
        let mid = vals.len() / 2;
        Some(if vals.len() % 2 == 1 {
            vals[mid]
        } else {
            (vals[mid - 1] + vals[mid]) / 2.0
        })
    }
}

/// One cell of the generalization grid.
struct Cell {
    train: String,
    eval: String,
    mse: Option<f64>,
    pearson: Option<f64>,
    n: usize,
}

fn json_num(v: Option<f64>) -> String {
    match v {
        Some(v) if v.is_finite() => format!("{v}"),
        _ => "null".to_owned(),
    }
}

fn main() {
    let mut key_width = 5usize;
    let mut scheme_list = "xor,mux,lut4,antisat".to_owned();
    let opts = Options::parse_extended(
        std::env::args().skip(1),
        "--key-width <w> --schemes <csv>",
        |flag, value| match flag {
            "--key-width" => {
                key_width = value("--key-width").parse().expect("usize key-width");
                true
            }
            "--schemes" => {
                scheme_list = value("--schemes");
                true
            }
            _ => false,
        },
    );
    opts.init_runtime();
    let schemes: Vec<(String, SchemeKind)> = scheme_list
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|name| {
            let kind = parse_scheme(name, key_width);
            (kind.to_string(), kind)
        })
        .collect();
    assert!(
        !schemes.is_empty(),
        "--schemes must name at least one scheme"
    );

    println!("# Cross-scheme generalization — ICNet-NN / All features");
    println!(
        "# profile={} instances={} keys_max={} key_width={} budget={} epochs={} schemes={}",
        opts.profile,
        opts.instances,
        opts.keys_max,
        key_width,
        opts.budget,
        opts.epochs,
        schemes
            .iter()
            .map(|(l, _)| l.as_str())
            .collect::<Vec<_>>()
            .join(",")
    );

    // ---- Stage 1: one dataset sweep per scheme (shared checkpoint log) ----
    let t0 = Instant::now();
    let generate_stage = obs::stage("generate");
    let circuit = synth::iscas::circuit(&opts.profile, 0).expect("known circuit profile");
    let mut runs: Vec<SchemeRun> = Vec::new();
    for (label, kind) in &schemes {
        let mut config = DatasetConfig::dataset1(&opts.profile, opts.instances);
        opts.configure(&mut config);
        config.scheme = *kind;
        // Equal-key-bits comparison: a scheme spending b key bits per locked
        // gate sweeps 1..=keys_max/b gates, clamped to its eligible sites.
        let eligible = obfuscate::eligible_gates(&circuit, *kind).len();
        let gates_max = (opts.keys_max / kind.key_bits_per_gate().max(1)).clamp(1, eligible.max(1));
        config.key_range = (1, gates_max);
        eprintln!("# sweeping {label} (key range 1..={gates_max}, {eligible} eligible gates)");
        let (data, quarantined) = try_load_or_generate_parallel(
            &config,
            &opts.out_dir,
            opts.jobs,
            opts.resume.as_deref(),
        );
        cli::exit_if_interrupted();
        let n = data.instances.len();
        let split = (n >= MIN_INSTANCES).then(|| train_test_split(n, 0.25, opts.seed));
        let note = if split.is_none() {
            format!("only {n} labels survived (need {MIN_INSTANCES}); raise --deadline / --retries")
        } else {
            String::new()
        };
        if !note.is_empty() {
            eprintln!("# WARNING: {label}: {note}");
        }
        runs.push(SchemeRun {
            label: label.clone(),
            data,
            quarantined,
            key_range: config.key_range,
            split,
            trained: None,
            note,
        });
    }
    drop(generate_stage);
    println!(
        "# generated {} scheme corpora in {:.1}s",
        runs.len(),
        t0.elapsed().as_secs_f64()
    );

    // ---- Stage 2: per-scheme training plus the pooled row ----
    let t1 = Instant::now();
    let crossgen_stage = obs::stage("crossgen");
    let train_config = TrainConfig {
        max_epochs: opts.epochs,
        lr: 5e-3,
        ..TrainConfig::default()
    };
    let ckpt_dir = opts.resume.as_ref().map(|p| format!("{p}.train"));
    if let Some(dir) = &ckpt_dir {
        std::fs::create_dir_all(dir).expect("create training checkpoint dir");
    }
    // The slug carries the training-set size: a corpus that grew between
    // runs (quarantines resolved under a raised deadline) is a *different*
    // training run, and must not trip icnet's checkpoint-shape refusal.
    let control = |slug: &str, n_train: usize| icnet::TrainControl {
        cancel: Some(cli::interrupt_token().clone()),
        checkpoint: ckpt_dir.as_ref().map(|dir| icnet::TrainCheckpointSpec {
            path: format!("{dir}/crossgen-{slug}-{n_train}i.ckpt"),
            resume: true,
        }),
        heartbeat: None,
    };
    // Training is deliberately ICNet-NN on All features — the paper's best
    // cell — so the grid varies only the scheme axis.
    let fit = |data: &Dataset, train_idx: &[usize], slug: &str| -> (Option<TrainedGnn>, String) {
        eprintln!("#   training on {slug} ({} instances)", train_idx.len());
        let (trained, report) = train_gnn_ctl(
            data,
            train_idx,
            ModelKind::ICNet,
            Aggregation::Nn,
            FeatureSet::All,
            &train_config,
            opts.seed,
            &control(slug, train_idx.len()),
        );
        if let Some(e) = &report.checkpoint_error {
            eprintln!("# WARNING: could not checkpoint {slug} training: {e}");
        }
        cli::exit_if_interrupted();
        if report.diverged {
            return (
                None,
                format!("training diverged in epoch {}", report.epochs_run),
            );
        }
        (Some(trained), String::new())
    };
    for run in &mut runs {
        if let Some(split) = run.split.clone() {
            let (trained, note) = fit(&run.data, &split.train, &run.label);
            if !note.is_empty() {
                run.note = note;
            }
            run.trained = trained;
        }
    }
    // Pooled row: every scheme's *training* instances concatenated over the
    // shared circuit; each scheme keeps its own test split untouched.
    let mut pooled_instances = Vec::new();
    let mut pooled_train = Vec::new();
    for run in &runs {
        if let Some(split) = &run.split {
            for &i in &split.train {
                pooled_train.push(pooled_instances.len());
                pooled_instances.push(run.data.instances[i].clone());
            }
        }
    }
    let pooled = (!pooled_train.is_empty()).then(|| Dataset {
        circuit: circuit.clone(),
        instances: pooled_instances,
    });
    let pooled_model: Option<TrainedGnn> = pooled
        .as_ref()
        .and_then(|data| fit(data, &pooled_train, "pooled").0);

    // ---- Stage 3: the ordered-pair grid ----
    let mut grid: Vec<Cell> = Vec::new();
    let rows: Vec<(String, Option<&TrainedGnn>)> = runs
        .iter()
        .map(|r| (r.label.clone(), r.trained.as_ref()))
        .chain(std::iter::once((
            "pooled".to_owned(),
            pooled_model.as_ref(),
        )))
        .collect();
    for (train_label, model) in &rows {
        for run in &runs {
            let test = run.split.as_ref().map(|s| s.test.as_slice()).unwrap_or(&[]);
            let cell = match (model, test.is_empty()) {
                (Some(m), false) => {
                    let (mse, pearson) = eval_gnn_metrics(m, &run.data, test);
                    Cell {
                        train: train_label.clone(),
                        eval: run.label.clone(),
                        mse: Some(mse),
                        pearson: Some(pearson),
                        n: test.len(),
                    }
                }
                _ => Cell {
                    train: train_label.clone(),
                    eval: run.label.clone(),
                    mse: None,
                    pearson: None,
                    n: test.len(),
                },
            };
            grid.push(cell);
        }
    }
    drop(crossgen_stage);
    cli::exit_if_interrupted();
    println!(
        "# trained {} models, evaluated {} cells in {:.1}s\n",
        rows.iter().filter(|(_, m)| m.is_some()).count(),
        grid.len(),
        t1.elapsed().as_secs_f64()
    );

    // ---- Render: corpus stats, then the MSE (Pearson) grid ----
    println!(
        "{:<16} {:>6} {:>6} {:>10} {:>10} {:>10}",
        "Scheme", "labels", "quar", "med-DIPs", "med-kbits", "censored"
    );
    for run in &runs {
        println!(
            "{:<16} {:>6} {:>6} {:>10} {:>10} {:>9.0}%",
            run.label,
            run.data.instances.len(),
            run.quarantined,
            run.median_of(|i| i.iterations as f64)
                .map(|v| format!("{v:.1}"))
                .unwrap_or_else(|| "N/A".into()),
            run.median_of(|i| i.key_bits as f64)
                .map(|v| format!("{v:.1}"))
                .unwrap_or_else(|| "N/A".into()),
            run.data.censored_fraction() * 100.0
        );
    }
    println!("\n# rows = training scheme, cols = evaluation scheme; MSE (Pearson r)");
    let mut header = format!("{:<16}", "train \\ eval");
    for run in &runs {
        let _ = write!(header, " {:>20}", run.label);
    }
    println!("{header}");
    for (train_label, _) in &rows {
        let mut line = format!("{train_label:<16}");
        for run in &runs {
            let cell = grid
                .iter()
                .find(|c| &c.train == train_label && c.eval == run.label)
                .expect("full grid");
            let text = match (cell.mse, cell.pearson) {
                (Some(m), Some(r)) => format!("{} ({r:+.2})", format_mse(Some(m))),
                _ => "N/A".to_owned(),
            };
            let _ = write!(line, " {text:>20}");
        }
        println!("{line}");
    }

    // ---- Persist BENCH_crossgen.json ----
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"study\": \"cross-scheme generalization\",");
    let _ = writeln!(
        json,
        "  \"profile\": \"{}\",\n  \"instances\": {},\n  \"keys_max\": {},\n  \
         \"key_width\": {},\n  \"budget\": {},\n  \"epochs\": {},\n  \"seed\": {},",
        opts.profile, opts.instances, opts.keys_max, key_width, opts.budget, opts.epochs, opts.seed
    );
    let _ = writeln!(json, "  \"schemes\": [");
    for (i, run) in runs.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{ \"scheme\": \"{}\", \"labels\": {}, \"quarantined\": {}, \
             \"key_range\": [{}, {}], \"median_iterations\": {}, \"median_key_bits\": {}, \
             \"censored_fraction\": {}, \"note\": \"{}\" }}{}",
            run.label,
            run.data.instances.len(),
            run.quarantined,
            run.key_range.0,
            run.key_range.1,
            json_num(run.median_of(|i| i.iterations as f64)),
            json_num(run.median_of(|i| i.key_bits as f64)),
            json_num(Some(run.data.censored_fraction())),
            run.note.replace('"', "'"),
            if i + 1 < runs.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"grid\": [");
    for (i, c) in grid.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{ \"train\": \"{}\", \"eval\": \"{}\", \"mse\": {}, \"pearson\": {}, \"n\": {} }}{}",
            c.train,
            c.eval,
            json_num(c.mse),
            json_num(c.pearson),
            c.n,
            if i + 1 < grid.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ]\n}}");
    std::fs::create_dir_all(&opts.out_dir).expect("create output dir");
    let path = format!("{}/BENCH_crossgen.json", opts.out_dir);
    std::fs::write(&path, json).expect("write BENCH_crossgen.json");
    println!("\n# wrote {path}");
    cli::finish_observability();
}
