//! Open-loop load generator for the `serve` binary.
//!
//! ```text
//! cargo run -p bench --release --bin loadgen -- \
//!     --addr 127.0.0.1:9107 --model demo --rates 50,200,2000 --requests 300
//! ```
//!
//! Offers each rate on a fixed schedule regardless of how fast the server
//! answers (so saturation is actually reached), classifies every reply by
//! its typed outcome, and writes `BENCH_serve.json` with predictions/s and
//! p50/p99 latency per offered load. Shares the common experiment flags
//! with the other binaries via `bench::cli`.

use bench::cli::{self, Options};
use serve::loadgen::{
    reports_to_json, run_levels, wait_ready, workload_request_bytes, LoadgenConfig, Workload,
};
use std::time::Duration;

fn main() {
    let mut addr = "127.0.0.1:9107".to_owned();
    let mut model = "demo".to_owned();
    let mut rates = vec![50.0, 200.0, 1000.0];
    let mut requests = 200usize;
    let mut clients = 8usize;
    let mut deadline_ms = 0u32;

    let opts = Options::parse_extended(
        std::env::args().skip(1),
        "--addr <host:port> --model <name> --rates <r1,r2,...> --requests <n> \
         --clients <n> --deadline-ms <n>",
        |flag, value| match flag {
            "--addr" => {
                addr = value("--addr");
                true
            }
            "--model" => {
                model = value("--model");
                true
            }
            "--rates" => {
                rates = value("--rates")
                    .split(',')
                    .map(|r| r.trim().parse().expect("rate in requests/second"))
                    .collect();
                true
            }
            "--requests" => {
                requests = value("--requests").parse().expect("usize requests");
                true
            }
            "--clients" => {
                clients = value("--clients").parse().expect("usize clients");
                true
            }
            "--deadline-ms" => {
                deadline_ms = value("--deadline-ms").parse().expect("u32 deadline-ms");
                true
            }
            _ => false,
        },
    );
    opts.init_runtime();

    // The workload is a real circuit from the experiment profile set: the
    // netlist text the server parses and the mask it encodes are exactly
    // what the offline pipeline produces.
    let circuit = synth::iscas::circuit(&opts.profile, opts.seed).unwrap_or_else(|| {
        eprintln!("loadgen: unknown circuit profile `{}`", opts.profile);
        std::process::exit(2);
    });
    let mask: Vec<String> = circuit
        .gates()
        .filter(|g| !matches!(g.kind(), netlist::GateKind::Input(_)))
        .take(opts.keys_max.max(1))
        .map(|g| g.name().to_owned())
        .collect();
    let workload = Workload {
        model: model.clone(),
        bench: circuit.to_bench(),
        mask,
        deadline_ms,
    };

    let config = LoadgenConfig {
        addr: addr.clone(),
        rates,
        requests,
        clients,
        timeout: Duration::from_secs(10),
        probe_timeout: None,
    };

    if let Err(e) = wait_ready(&config, Duration::from_secs(10)) {
        eprintln!("loadgen: server at {addr} never became ready: {e}");
        std::process::exit(1);
    }

    println!(
        "# loadgen: profile={} model={model} requests={requests} clients={clients} rates={:?}",
        opts.profile, config.rates
    );
    let reports = run_levels(&config, &workload);
    for r in &reports {
        println!(
            "# offered {:>8.1} rps: {} ok, {} overloaded, {} deadline, {} other | \
             achieved {:.1} ok/s, p50 {:.2} ms, p99 {:.2} ms",
            r.offered_rps,
            r.ok,
            r.overloaded,
            r.deadline_exceeded,
            r.other_error,
            r.achieved_ok_rps,
            r.p50_ms,
            r.p99_ms,
        );
        cli::exit_if_interrupted();
    }

    // The demo server registers Gcn/All models (`serve --write-demo-model`);
    // logical bytes are a pure function of the workload, so the client can
    // stamp the per-request figure the server meters (ServeStats).
    let peak_request_bytes =
        workload_request_bytes(&workload, icnet::ModelKind::Gcn, icnet::FeatureSet::All)
            .unwrap_or(0);
    println!("# peak_request_bytes = {peak_request_bytes}");
    let json = reports_to_json(&model, &reports, peak_request_bytes);
    std::fs::create_dir_all(&opts.out_dir).expect("create out dir");
    let path = std::path::Path::new(&opts.out_dir).join("BENCH_serve.json");
    std::fs::write(&path, json).expect("write BENCH_serve.json");
    println!("# wrote {}", path.display());
    cli::finish_observability();
}
