//! Long-lived prediction service over persisted ICNet models.
//!
//! ```text
//! # one-time: persist a demo model into ./models
//! cargo run -p bench --release --bin serve -- --write-demo-model demo
//!
//! # serve it
//! cargo run -p bench --release --bin serve -- --addr 127.0.0.1:9107 --jobs 4
//! ```
//!
//! Shares the common experiment flags (`--trace`, `--progress`,
//! `--fault-plan`, `--jobs`, `--seed`, `--deadline`) with the other
//! binaries via `bench::cli`, and adds its own. SIGINT drains in-flight
//! requests and exits 130, like every other binary in the workspace.

use bench::cli::{self, Options};
use std::time::Duration;

fn main() {
    let mut addr = "127.0.0.1:9107".to_owned();
    let mut models_dir = "models".to_owned();
    let mut queue_depth = 64usize;
    let mut max_payload = serve::protocol::DEFAULT_MAX_PAYLOAD;
    let mut batch_window_ms = 1.0f64;
    let mut max_batch = 16usize;
    let mut mem_watermark_mb: Option<u64> = None;
    let mut write_demo: Option<String> = None;

    let opts = Options::parse_extended(
        std::env::args().skip(1),
        "--addr <host:port> --models <dir> --queue <n> --max-payload <bytes> \
         --batch-window-ms <ms> --max-batch <n> --mem-watermark-mb <mb> \
         --write-demo-model <name>",
        |flag, value| match flag {
            "--addr" => {
                addr = value("--addr");
                true
            }
            "--models" => {
                models_dir = value("--models");
                true
            }
            "--queue" => {
                queue_depth = value("--queue").parse().expect("usize queue");
                true
            }
            "--max-payload" => {
                max_payload = value("--max-payload").parse().expect("u32 max-payload");
                true
            }
            "--batch-window-ms" => {
                batch_window_ms = value("--batch-window-ms").parse().expect("f64 window");
                true
            }
            "--max-batch" => {
                max_batch = value("--max-batch").parse().expect("usize max-batch");
                true
            }
            "--mem-watermark-mb" => {
                mem_watermark_mb =
                    Some(value("--mem-watermark-mb").parse().expect("u64 watermark"));
                true
            }
            "--write-demo-model" => {
                write_demo = Some(value("--write-demo-model"));
                true
            }
            _ => false,
        },
    );
    opts.init_runtime();

    if let Some(name) = write_demo {
        // A small untrained model: real architecture, real persistence
        // (checksum footer included), deterministic weights from --seed.
        let model = icnet::GraphModel::new(
            icnet::ModelKind::Gcn,
            icnet::Aggregation::Sum,
            icnet::NUM_FEATURES_ALL,
            16,
            16,
            opts.seed,
        );
        match serve::save_model(&models_dir, &name, &model) {
            Ok(path) => println!("# demo model written to {}", path.display()),
            Err(e) => {
                eprintln!("serve: {e}");
                std::process::exit(1);
            }
        }
        cli::finish_observability();
        return;
    }

    let registry = match serve::ModelRegistry::load_dir(&models_dir) {
        Ok(registry) => registry,
        Err(e) => {
            // A corrupt or torn model file refuses startup loudly: serving
            // half a fleet silently is the one thing this binary must not do.
            eprintln!("serve: {e}");
            cli::finish_observability();
            std::process::exit(1);
        }
    };

    let model_count = registry.len();
    let model_names = registry.names().join(", ");
    let config = serve::ServeConfig {
        addr,
        workers: opts.jobs.max(1),
        queue_depth,
        max_payload,
        default_deadline: opts
            .deadline
            .map(Duration::from_secs_f64)
            .unwrap_or(Duration::from_secs(5)),
        batch_window: Duration::from_secs_f64(batch_window_ms.max(0.0) / 1e3),
        max_batch: max_batch.max(1),
        mem_watermark: mem_watermark_mb.map(|mb| mb * 1024 * 1024),
        cancel: cli::interrupt_token().clone(),
        ..Default::default()
    };
    let server = match serve::Server::start(registry, config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("serve: cannot bind: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "# serving {model_count} model(s) [{model_names}] on {} ({} workers, queue depth {queue_depth})",
        server.local_addr(),
        opts.jobs.max(1),
    );
    // `join` blocks until SIGINT trips the shared interrupt token, then
    // drains: admitted requests finish, late connections get ShuttingDown.
    let stats = server.join();
    eprintln!(
        "# drained: {} admitted, {} ok, {} shed, {} errors, {} worker deaths ({} respawned), \
         {} inference batches ({} requests micro-batched), peak request {} bytes",
        stats.admitted,
        stats.completed,
        stats.shed,
        stats.errors,
        stats.worker_deaths,
        stats.respawns,
        stats.infer_batches,
        stats.batched_requests,
        stats.peak_request_bytes,
    );
    cli::exit_if_interrupted();
    cli::finish_observability();
}
