//! Regenerates the **Section IV-C timing claim**: a trained ICNet predicts
//! de-obfuscation runtime in a single forward pass, versus actually running
//! the SAT attack (the paper: 1.13 s average inference vs 2411 s for the
//! hardest instance — 99.95 % of solver time saved).
//!
//! ```text
//! cargo run -p bench --release --bin timing [-- --quick ...]
//! ```

use bench::cli::Options;
use bench::harness::{evaluate_gnn_ctl, percent_saved};
use dataset::{graph_features, train_test_split, DatasetConfig};
use icnet::{Aggregation, FeatureSet, ModelKind};
use std::time::Instant;

fn main() {
    let opts = Options::from_env();
    opts.init_runtime();
    let mut config = DatasetConfig::dataset1(&opts.profile, opts.instances);
    opts.configure(&mut config);
    config.key_range = (1, opts.keys_max);
    println!("# Timing — ICNet inference vs actual SAT attack");
    let t_gen = Instant::now();
    let generate_stage = obs::stage("generate");
    let data = bench::harness::load_or_generate_parallel(
        &config,
        &opts.out_dir,
        opts.jobs,
        opts.resume.as_deref(),
    );
    drop(generate_stage);
    let attack_wall = t_gen.elapsed();

    let split = train_test_split(data.instances.len(), 0.25, opts.seed);
    let train_stage = obs::stage("train");
    let config = icnet::TrainConfig {
        max_epochs: opts.epochs,
        lr: 5e-3,
        ..icnet::TrainConfig::default()
    };
    let control = icnet::TrainControl {
        cancel: Some(bench::cli::interrupt_token().clone()),
        checkpoint: None,
        heartbeat: None,
    };
    let (_, model) = evaluate_gnn_ctl(
        &data,
        &split,
        ModelKind::ICNet,
        Aggregation::Nn,
        FeatureSet::All,
        &config,
        opts.seed,
        &control,
    );
    drop(train_stage);
    bench::cli::exit_if_interrupted();

    let xs = graph_features(&data.circuit, &data.instances, FeatureSet::All);

    // Inference latency, averaged over every instance.
    let inference_stage = obs::stage("inference");
    let t_inf = Instant::now();
    for x in &xs {
        let _ = model.predict(x);
    }
    let per_inference = t_inf.elapsed().as_secs_f64() / xs.len() as f64;
    drop(inference_stage);

    let hardest = data
        .instances
        .iter()
        .map(|i| i.seconds)
        .fold(0.0f64, f64::max);
    let mean_attack =
        data.instances.iter().map(|i| i.seconds).sum::<f64>() / data.instances.len() as f64;
    let saved = percent_saved(per_inference, hardest);

    println!("instances attacked            : {}", data.instances.len());
    println!(
        "total attack wall time        : {:.2} s",
        attack_wall.as_secs_f64()
    );
    println!("mean attack runtime (label)   : {mean_attack:.4} s");
    println!("hardest attack runtime (label): {hardest:.4} s");
    println!("ICNet inference per instance  : {:.6} s", per_inference);
    println!("solver time saved on hardest  : {saved:.2} %  (paper: 99.95 %)");
    println!(
        "speedup vs hardest instance   : {:.0}x",
        hardest / per_inference.max(1e-12)
    );
    bench::cli::finish_observability();
}
