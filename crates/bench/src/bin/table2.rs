//! Regenerates **Table II**: regression MSE on Dataset 2 (1..=3 key gates —
//! the small-runtime regime where every method must be precise).
//!
//! ```text
//! cargo run -p bench --release --bin table2 [-- --quick ...]
//! ```

use bench::cli::Options;
use bench::harness::{format_table, results_to_csv, run_mse_suite_ctl, SuiteControl};
use bench::methods::BaselineKind;
use dataset::DatasetConfig;
use std::time::Instant;

fn main() {
    let opts = Options::from_env();
    opts.init_runtime();
    let mut config = DatasetConfig::dataset2(&opts.profile, opts.instances);
    opts.configure(&mut config);
    // Dataset 2 draws from a different stream than Dataset 1 on purpose.
    config.seed = opts.seed.wrapping_add(1);
    println!("# Table II — MSE on Dataset 2");
    println!(
        "# profile={} instances={} key_range={:?} scheme={} budget={} epochs={}",
        opts.profile, opts.instances, config.key_range, config.scheme, opts.budget, opts.epochs
    );

    let t0 = Instant::now();
    let generate_stage = obs::stage("generate");
    let data = bench::harness::load_or_generate_parallel(
        &config,
        &opts.out_dir,
        opts.jobs,
        opts.resume.as_deref(),
    );
    drop(generate_stage);
    println!(
        "# generated {} instances in {:.1}s ({:.0}% censored)",
        data.instances.len(),
        t0.elapsed().as_secs_f64(),
        data.censored_fraction() * 100.0
    );

    let t1 = Instant::now();
    let suite_stage = obs::stage("suite");
    // Training checkpoints ride the --resume flag: the dataset log at the
    // given path, per-cell training state under `<path>.train/`.
    let suite_ctl = SuiteControl {
        cancel: Some(bench::cli::interrupt_token().clone()),
        train_checkpoint_dir: opts.resume.as_ref().map(|p| format!("{p}.train")),
    };
    let results = run_mse_suite_ctl(
        &data,
        &BaselineKind::table2(),
        opts.epochs,
        opts.seed,
        opts.jobs,
        &suite_ctl,
    );
    drop(suite_stage);
    bench::cli::exit_if_interrupted();
    println!(
        "# evaluated {} cells in {:.1}s\n",
        results.len(),
        t1.elapsed().as_secs_f64()
    );
    print!("{}", format_table(&results));

    std::fs::create_dir_all(&opts.out_dir).expect("create output dir");
    let path = format!("{}/table2.csv", opts.out_dir);
    std::fs::write(&path, results_to_csv(&results)).expect("write csv");
    println!("\n# wrote {path}");
    bench::cli::finish_observability();
}
