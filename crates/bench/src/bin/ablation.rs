//! Ablations of ICNet's design choices (DESIGN.md §9): graph operator,
//! aggregation stage, convolution depth, output head, and feature set.
//!
//! Each row trains on the same Dataset-1-style split and reports held-out
//! MSE on log-runtime, isolating one design axis at a time.
//!
//! ```text
//! cargo run --release -p bench --bin ablation [-- --quick ...]
//! ```

use bench::cli::Options;
use bench::harness::{take, take_rows};
use dataset::{
    flat_features, graph_features, train_test_split, DatasetConfig, FlatAggregation,
    StructureEncoding,
};
use icnet::{Aggregation, FeatureSet, GraphModel, ModelKind, OutputHead, TrainConfig};
use regress::metrics;
use std::fmt::Write as _;
use std::sync::Arc;

struct Ablation<'a> {
    data: &'a dataset::Dataset,
    split: dataset::Split,
    epochs: usize,
    seed: u64,
    report: String,
}

impl Ablation<'_> {
    /// Trains one model variant and returns its held-out log-scale MSE.
    #[allow(clippy::too_many_arguments)]
    fn run(
        &mut self,
        label: &str,
        kind: ModelKind,
        agg: Aggregation,
        fs: FeatureSet,
        conv_layers: usize,
        head: OutputHead,
    ) {
        bench::cli::exit_if_interrupted();
        let _stage = obs::stage(label);
        let control = icnet::TrainControl {
            cancel: Some(bench::cli::interrupt_token().clone()),
            checkpoint: None,
            heartbeat: None,
        };
        let graph = icnet::CircuitGraph::from_circuit(&self.data.circuit);
        let op = Arc::new(kind.operator(&graph));
        let xs = graph_features(&self.data.circuit, &self.data.instances, fs);
        // Identity head trains on standardized log labels; the exp head
        // (paper Eq. 3) trains on raw seconds directly.
        let log_y = self.data.labels();
        let raw_y: Vec<f64> = self.data.instances.iter().map(|i| i.seconds).collect();

        let train_idx = self.split.train.clone();
        let test_idx = self.split.test.clone();
        let xs_train: Vec<tensor::Matrix> = train_idx.iter().map(|&i| xs[i].clone()).collect();

        let mut model =
            GraphModel::with_conv_layers(kind, agg, fs.width(), 16, conv_layers, self.seed)
                .with_output(head);
        let config = TrainConfig {
            max_epochs: self.epochs,
            lr: 5e-3,
            ..TrainConfig::default()
        };
        let (mse, note) = match head {
            OutputHead::Identity => {
                let y_train_raw = take(&log_y, &train_idx);
                let mean = y_train_raw.iter().sum::<f64>() / y_train_raw.len() as f64;
                let std = (y_train_raw.iter().map(|v| (v - mean).powi(2)).sum::<f64>()
                    / y_train_raw.len() as f64)
                    .sqrt()
                    .max(1e-9);
                let y_train: Vec<f64> = y_train_raw.iter().map(|v| (v - mean) / std).collect();
                icnet::train_with(&mut model, &op, &xs_train, &y_train, &config, &control);
                let pred: Vec<f64> = test_idx
                    .iter()
                    .map(|&i| model.predict(&op, &xs[i]) * std + mean)
                    .collect();
                (metrics::mse(&pred, &take(&log_y, &test_idx)), "")
            }
            OutputHead::Exp => {
                let y_train = take(&raw_y, &train_idx);
                icnet::train_with(&mut model, &op, &xs_train, &y_train, &config, &control);
                // Compare on the log scale so all rows are commensurate.
                let pred: Vec<f64> = test_idx
                    .iter()
                    .map(|&i| model.predict(&op, &xs[i]).max(1e-6).ln())
                    .collect();
                (
                    metrics::mse(&pred, &take(&log_y, &test_idx)),
                    " (exp head, trained on raw seconds)",
                )
            }
        };
        println!("{label:<42} {mse:>10.4}{note}");
        let _ = writeln!(self.report, "{label},{mse}");
    }
}

fn main() {
    let opts = Options::from_env();
    opts.init_runtime();
    let mut config = DatasetConfig::dataset1(&opts.profile, opts.instances);
    opts.configure(&mut config);
    config.key_range = (1, opts.keys_max);
    println!("# Ablations — held-out MSE on log-runtime");
    let generate_stage = obs::stage("generate");
    let data = bench::harness::load_or_generate_parallel(
        &config,
        &opts.out_dir,
        opts.jobs,
        opts.resume.as_deref(),
    );
    drop(generate_stage);
    println!(
        "# profile={} instances={} ({:.0}% censored)\n",
        opts.profile,
        data.instances.len(),
        data.censored_fraction() * 100.0
    );
    let split = train_test_split(data.instances.len(), 0.25, opts.seed);
    let mut ab = Ablation {
        data: &data,
        split: split.clone(),
        epochs: opts.epochs,
        seed: opts.seed,
        report: String::from("variant,mse\n"),
    };

    println!("-- graph operator (Nn aggregation, all features, 2 convs) --");
    ab.run(
        "operator: adjacency (ICNet)",
        ModelKind::ICNet,
        Aggregation::Nn,
        FeatureSet::All,
        2,
        OutputHead::Identity,
    );
    ab.run(
        "operator: normalized Laplacian (GCN)",
        ModelKind::Gcn,
        Aggregation::Nn,
        FeatureSet::All,
        2,
        OutputHead::Identity,
    );
    ab.run(
        "operator: Chebyshev k=3 (ChebNet)",
        ModelKind::ChebNet { k: 3 },
        Aggregation::Nn,
        FeatureSet::All,
        2,
        OutputHead::Identity,
    );

    println!("-- aggregation (ICNet, all features, 2 convs) --");
    ab.run(
        "aggregation: learned attention (NN)",
        ModelKind::ICNet,
        Aggregation::Nn,
        FeatureSet::All,
        2,
        OutputHead::Identity,
    );
    ab.run(
        "aggregation: sum",
        ModelKind::ICNet,
        Aggregation::Sum,
        FeatureSet::All,
        2,
        OutputHead::Identity,
    );
    ab.run(
        "aggregation: mean",
        ModelKind::ICNet,
        Aggregation::Mean,
        FeatureSet::All,
        2,
        OutputHead::Identity,
    );

    println!("-- convolution depth (ICNet-NN, all features) --");
    for layers in [1usize, 2, 3] {
        ab.run(
            &format!("conv layers: {layers}"),
            ModelKind::ICNet,
            Aggregation::Nn,
            FeatureSet::All,
            layers,
            OutputHead::Identity,
        );
    }

    println!("-- output head (ICNet-NN, all features, 2 convs) --");
    ab.run(
        "head: identity on log labels",
        ModelKind::ICNet,
        Aggregation::Nn,
        FeatureSet::All,
        2,
        OutputHead::Identity,
    );
    ab.run(
        "head: exp on raw seconds (paper Eq. 3)",
        ModelKind::ICNet,
        Aggregation::Nn,
        FeatureSet::All,
        2,
        OutputHead::Exp,
    );

    println!("-- feature set (ICNet-NN, 2 convs) --");
    ab.run(
        "features: mask + gate types (All)",
        ModelKind::ICNet,
        Aggregation::Nn,
        FeatureSet::All,
        2,
        OutputHead::Identity,
    );
    ab.run(
        "features: mask only (Location)",
        ModelKind::ICNet,
        Aggregation::Nn,
        FeatureSet::Location,
        2,
        OutputHead::Identity,
    );

    // Flat-encoding structure choice for the classical baselines.
    println!("-- flat structure encoding (ridge baseline) --");
    let y = data.labels();
    for structure in [StructureEncoding::Adjacency, StructureEncoding::Laplacian] {
        let x = flat_features(
            &data.circuit,
            &data.instances,
            FeatureSet::All,
            structure,
            FlatAggregation::Sum,
        );
        let mut model = regress::Ridge::new(1.0);
        use regress::Regressor as _;
        model
            .fit(&take_rows(&x, &split.train), &take(&y, &split.train))
            .expect("ridge fits");
        let pred = model.predict(&take_rows(&x, &split.test));
        let mse = metrics::mse(&pred, &take(&y, &split.test));
        println!("{:<42} {mse:>10.4}", format!("ridge on {structure:?} rows"));
        let _ = writeln!(ab.report, "ridge_{structure:?},{mse}");
    }

    std::fs::create_dir_all(&opts.out_dir).expect("create output dir");
    let path = format!("{}/ablation.csv", opts.out_dir);
    std::fs::write(&path, ab.report).expect("write csv");
    println!("\n# wrote {path}");
    bench::cli::finish_observability();
}
