//! Regenerates **Table III** — the attention case study: for four circuits,
//! the learned feature-attention split between the gate mask ("gate #") and
//! the gate-type one-hots, the Pearson/Spearman correlation between actual
//! runtime and key-gate count, and the fitted linear parameter.
//!
//! ```text
//! cargo run -p bench --release --bin table3 [-- --quick ...]
//! ```

use bench::cli::Options;
use bench::harness::evaluate_gnn_ctl;
use dataset::{generate, train_test_split, DatasetConfig};
use icnet::{Aggregation, FeatureSet, ModelKind};
use regress::metrics::{pearson, spearman};
use std::fmt::Write as _;

/// Renders a correlation coefficient, or `n/a` when it is undefined (NaN
/// from non-finite inputs — a diverged model or degenerate labels).
fn fmt_corr(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "n/a".to_owned()
    }
}

fn main() {
    let opts = Options::from_env();
    opts.init_runtime();
    // The paper's case-study circuits (c7553/c1335 in the paper's text are
    // the c7552/c1355 ISCAS-85 profiles).
    let circuits: Vec<&str> = if opts.quick {
        vec!["c432", "c499"]
    } else {
        vec!["c7552", "c499", "c2670", "c1355"]
    };
    println!("# Table III — attention on attributes");
    println!(
        "# instances-per-circuit={} budget={} epochs={}",
        opts.instances, opts.budget, opts.epochs
    );
    println!(
        "{:<8} {:>8} {:>10} {:>12} {:>12} {:>12}",
        "circuit", "gate #", "gate type", "corr(P)", "corr(S)", "linear param"
    );

    let mut csv = String::from(
        "circuit,gate_mask_attention,gate_type_attention,pearson,spearman,linear_param\n",
    );
    for profile in circuits {
        let _circuit_stage = obs::stage(&format!("circuit {profile}"));
        let mut config = DatasetConfig::dataset1(profile, opts.instances.min(60));
        config.key_range = (1, 30.min(config.key_range.1));
        opts.configure(&mut config);
        let data = generate(&config).expect("dataset generation");

        let split = train_test_split(data.instances.len(), 0.25, opts.seed);
        let config = icnet::TrainConfig {
            max_epochs: opts.epochs,
            lr: 5e-3,
            ..icnet::TrainConfig::default()
        };
        let control = icnet::TrainControl {
            cancel: Some(bench::cli::interrupt_token().clone()),
            checkpoint: None,
            heartbeat: None,
        };
        let (_, model) = evaluate_gnn_ctl(
            &data,
            &split,
            ModelKind::ICNet,
            Aggregation::Nn,
            FeatureSet::All,
            &config,
            opts.seed,
            &control,
        );
        bench::cli::exit_if_interrupted();
        let attn = model.feature_attention().expect("NN model has Θfeat");
        let mask_share = attn[0];
        let type_share: f64 = attn[1..].iter().sum();

        let counts: Vec<f64> = data
            .instances
            .iter()
            .map(|i| i.num_selected() as f64)
            .collect();
        let seconds: Vec<f64> = data.instances.iter().map(|i| i.seconds).collect();
        let p = pearson(&counts, &seconds);
        let s = spearman(&counts, &seconds);
        // "Linear param": slope of runtime (s) per key gate, as in the
        // paper's per-circuit linear rule.
        let slope = {
            let n = counts.len() as f64;
            let mc = counts.iter().sum::<f64>() / n;
            let ms = seconds.iter().sum::<f64>() / n;
            let cov: f64 = counts
                .iter()
                .zip(&seconds)
                .map(|(&c, &y)| (c - mc) * (y - ms))
                .sum();
            let var: f64 = counts.iter().map(|&c| (c - mc) * (c - mc)).sum();
            cov / var.max(1e-12)
        };

        println!(
            "{:<8} {:>7.2}% {:>9.2}% {:>12} {:>12} {:>12.4}",
            profile,
            mask_share * 100.0,
            type_share * 100.0,
            fmt_corr(p),
            fmt_corr(s),
            slope
        );
        let _ = writeln!(csv, "{profile},{mask_share},{type_share},{p},{s},{slope}");
    }

    std::fs::create_dir_all(&opts.out_dir).expect("create output dir");
    let path = format!("{}/table3.csv", opts.out_dir);
    std::fs::write(&path, csv).expect("write csv");
    println!("\n# wrote {path}");
    bench::cli::finish_observability();
}
