//! Experiment harness regenerating every table and figure of the paper.
//!
//! Binaries (run with `cargo run -p bench --release --bin <name>`):
//!
//! * `table1` — Table I: regression MSE on Dataset 1 (1..=350 key gates);
//! * `table2` — Table II: regression MSE on Dataset 2 (1..=3 key gates);
//! * `table3` — Table III: feature-attention case study over four circuits;
//! * `figure3` — Figure 3: per-method predicted-vs-real series (CSV);
//! * `timing` — Section IV-C: ICNet inference time vs actual solver time.
//!
//! Every binary accepts `--quick` (small circuit, fast sanity run) and
//! prints the exact configuration it used; see `EXPERIMENTS.md` for the
//! recorded paper-vs-measured comparison.

pub mod cli;
pub mod harness;
pub mod methods;
