//! The method roster of Tables I and II.

use regress::{
    ElasticNet, Kernel, Lars, Lasso, LinearRegression, OrthogonalMatchingPursuit,
    PassiveAggressive, Regressor, Ridge, SgdRegressor, Svr, TheilSen,
};
use tensor::Matrix;

/// The classical baselines, in the paper's table order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BaselineKind {
    /// ε-SVR with an RBF kernel.
    SvrRbf,
    /// ε-SVR with a polynomial kernel.
    SvrPoly,
    /// SGD-fitted linear regression.
    Sgd,
    /// Ordinary least squares.
    Lr,
    /// Ridge regression.
    Rr,
    /// LASSO.
    Lasso,
    /// Elastic net.
    En,
    /// Orthogonal matching pursuit.
    Omp,
    /// Passive-aggressive regression (Table II only in the paper).
    Par,
    /// Least-angle regression.
    Lars,
    /// Theil-Sen.
    Theil,
}

impl BaselineKind {
    /// Table I's baseline roster.
    pub fn table1() -> Vec<BaselineKind> {
        use BaselineKind::*;
        vec![SvrRbf, SvrPoly, Sgd, Lr, Rr, Lasso, En, Omp, Lars, Theil]
    }

    /// Table II's baseline roster (adds PAR).
    pub fn table2() -> Vec<BaselineKind> {
        use BaselineKind::*;
        vec![
            SvrRbf, SvrPoly, Sgd, Lr, Rr, Lasso, En, Omp, Par, Lars, Theil,
        ]
    }

    /// The paper's row label.
    pub fn label(&self) -> &'static str {
        match self {
            BaselineKind::SvrRbf => "SVR RBF",
            BaselineKind::SvrPoly => "SVR Poly",
            BaselineKind::Sgd => "SGD",
            BaselineKind::Lr => "LR",
            BaselineKind::Rr => "RR",
            BaselineKind::Lasso => "LASSO",
            BaselineKind::En => "EN",
            BaselineKind::Omp => "OMP",
            BaselineKind::Par => "PAR",
            BaselineKind::Lars => "LARS",
            BaselineKind::Theil => "Theil",
        }
    }

    /// Instantiates the estimator with data-scaled hyper-parameters
    /// (`x` is the training design matrix, used only to pick the RBF/poly
    /// `gamma` the way scikit-learn's `gamma="scale"` does).
    pub fn build(&self, x: &Matrix) -> Box<dyn Regressor> {
        let gamma = gamma_scale(x);
        match self {
            BaselineKind::SvrRbf => Box::new(Svr::new(Kernel::Rbf { gamma }, 10.0, 0.1)),
            BaselineKind::SvrPoly => Box::new(Svr::new(
                Kernel::Poly {
                    degree: 3,
                    gamma,
                    coef0: 1.0,
                },
                10.0,
                0.1,
            )),
            BaselineKind::Sgd => Box::new(SgdRegressor::default()),
            BaselineKind::Lr => Box::new(LinearRegression::new()),
            BaselineKind::Rr => Box::new(Ridge::new(1.0)),
            BaselineKind::Lasso => Box::new(Lasso::new(0.1)),
            BaselineKind::En => Box::new(ElasticNet::new(0.1, 0.5)),
            BaselineKind::Omp => Box::new(OrthogonalMatchingPursuit::new(None)),
            BaselineKind::Par => Box::new(PassiveAggressive::default()),
            // Full-path LARS on a ~1536-dim design is cubic per step; the
            // informative feature count here is tiny, so cap the path.
            BaselineKind::Lars => Box::new(Lars::new(Some(32))),
            BaselineKind::Theil => Box::new(TheilSen::default()),
        }
    }
}

/// scikit-learn's `gamma="scale"`: `1 / (n_features * Var(X))`.
fn gamma_scale(x: &Matrix) -> f64 {
    let mean = x.mean();
    let n = (x.rows() * x.cols()).max(1) as f64;
    let var = x
        .as_slice()
        .iter()
        .map(|&v| (v - mean) * (v - mean))
        .sum::<f64>()
        / n;
    1.0 / (x.cols().max(1) as f64 * var.max(1e-12))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rosters_match_paper_rows() {
        assert_eq!(BaselineKind::table1().len(), 10);
        assert_eq!(BaselineKind::table2().len(), 11);
        assert!(BaselineKind::table2().contains(&BaselineKind::Par));
        assert!(!BaselineKind::table1().contains(&BaselineKind::Par));
    }

    #[test]
    fn every_baseline_builds() {
        let x = Matrix::from_fn(10, 4, |r, c| (r * 3 + c) as f64 / 10.0);
        for kind in BaselineKind::table2() {
            let model = kind.build(&x);
            assert!(!model.name().is_empty());
            assert!(!kind.label().is_empty());
        }
    }

    #[test]
    fn gamma_scale_positive_even_on_constant_data() {
        let x = Matrix::ones(5, 3);
        assert!(gamma_scale(&x).is_finite());
        assert!(gamma_scale(&x) > 0.0);
    }
}
