//! Shared evaluation pipeline: encode → split → fit → test-set MSE.

use crate::methods::BaselineKind;
use dataset::{
    flat_features, train_test_split, Dataset, FlatAggregation, Split, StructureEncoding,
};
use icnet::{Aggregation, FeatureSet, GraphModel, ModelKind, TrainConfig};
use regress::metrics;
use std::sync::Arc;
use tensor::Matrix;

/// Generates the dataset for `config`, or loads it from a CSV cache under
/// `out_dir` when an identical configuration was generated before (the
/// pipeline is deterministic, so the cache key is the configuration).
///
/// # Panics
///
/// Panics when generation fails (bad profile/range) or a cache file is
/// corrupt — both are setup errors for an experiment binary.
pub fn load_or_generate(config: &dataset::DatasetConfig, out_dir: &str) -> Dataset {
    load_or_generate_parallel(config, out_dir, 1, None)
}

/// The CSV cache path [`load_or_generate_parallel`] uses for `config` under
/// `out_dir`: the pipeline is deterministic, so the cache key is the
/// label-relevant configuration.
pub fn dataset_cache_path(config: &dataset::DatasetConfig, out_dir: &str) -> String {
    let key = format!(
        "{}_{}_{}_{}_{}_{}_{}_{}",
        config.profile,
        config.circuit_seed,
        config.scheme,
        config.num_instances,
        config.key_range.0,
        config.key_range.1,
        config.seed,
        config.attack.work_budget.unwrap_or(0),
    );
    format!("{out_dir}/dataset_{key}.csv")
}

/// [`load_or_generate`] with a worker count and an optional checkpoint log
/// (the `--jobs` / `--resume` flags). The dataset is byte-identical for
/// every `jobs` value and for any interrupted-then-resumed schedule; the
/// per-worker sweep report is printed to stderr when generation runs.
///
/// Under `--keep-going` (the default) a sweep with quarantined instances
/// still succeeds, yielding the healthy subset of labels; the quarantines
/// are listed in the sweep report. A partial dataset is deliberately *not*
/// CSV-cached as complete — its instance count differs from
/// `config.num_instances`, so the next run misses the cache and retries
/// via the checkpoint log (which skips known-bad instances cheaply).
///
/// An unreadable or torn cache file is a logged cache miss, not an error:
/// the dataset regenerates and the cache is rewritten atomically (temp file
/// + rename), so a crash mid-write can never poison the next run.
///
/// # Panics
///
/// Panics when generation fails or a checkpoint file is corrupt — both are
/// setup errors for an experiment binary.
pub fn load_or_generate_parallel(
    config: &dataset::DatasetConfig,
    out_dir: &str,
    jobs: usize,
    resume: Option<&str>,
) -> Dataset {
    let (data, _quarantined) = try_load_or_generate_parallel(config, out_dir, jobs, resume);
    assert!(
        !data.instances.is_empty(),
        "every instance was quarantined — nothing to train on; raise --deadline, \
         add --retries, or inspect the failures above"
    );
    data
}

/// Quarantine-tolerant variant of [`load_or_generate_parallel`]: returns
/// the (possibly partial, possibly even empty) dataset together with the
/// number of quarantined instances (0 on a cache hit). SAT-resilient
/// schemes under tight deadlines routinely quarantine their whole corpus;
/// study binaries like `crossgen` render such a scheme as N/A cells instead
/// of aborting the entire grid.
pub fn try_load_or_generate_parallel(
    config: &dataset::DatasetConfig,
    out_dir: &str,
    jobs: usize,
    resume: Option<&str>,
) -> (Dataset, usize) {
    let path = dataset_cache_path(config, out_dir);
    let circuit =
        synth::iscas::circuit(&config.profile, config.circuit_seed).expect("known circuit profile");
    if let Ok(text) = std::fs::read_to_string(&path) {
        let parsed = unseal_csv(&text)
            .and_then(|body| dataset::dataset_from_csv(body).map_err(|e| e.to_string()));
        match parsed {
            Ok(instances) if instances.len() == config.num_instances => {
                eprintln!("# reusing cached dataset {path}");
                obs::emit(obs::EventKind::Cache {
                    hit: true,
                    path: path.clone(),
                });
                return (Dataset { circuit, instances }, 0);
            }
            Ok(_) => {} // partial dataset from a keep-going run: regenerate
            Err(e) => {
                // Torn file from a crash mid-write (pre-atomic-rename cache)
                // or manual editing: regenerating is always safe.
                eprintln!("# WARNING: ignoring corrupt dataset cache {path}: {e}");
            }
        }
    }
    obs::emit(obs::EventKind::Cache {
        hit: false,
        path: path.clone(),
    });
    let mut checkpoint = resume.map(|p| {
        let log = dataset::CheckpointLog::open(p).expect("usable checkpoint log");
        if !log.is_empty() {
            eprintln!("# resuming from {} ({} instances on record)", p, log.len());
        }
        log
    });
    let (data, report) = match dataset::generate_parallel_with(config, jobs, checkpoint.as_mut()) {
        Ok(pair) => pair,
        Err(dataset::DatasetError::Interrupted) => {
            // First SIGINT: the sweep drained its workers and checkpointed
            // every finished attack; this is the graceful shutdown path.
            eprintln!("# interrupted during generation: progress checkpointed; rerun to resume");
            crate::cli::finish_observability();
            std::process::exit(crate::cli::INTERRUPT_EXIT_CODE);
        }
        Err(e) => panic!("dataset generation: {e}"),
    };
    eprint!("{}", report.summary());
    if report.quarantined() > 0 {
        eprintln!(
            "# WARNING: {} instance(s) quarantined; proceeding with {} of {} labels",
            report.quarantined(),
            data.instances.len(),
            config.num_instances
        );
    }
    let _ = std::fs::create_dir_all(out_dir);
    if !data.instances.is_empty() {
        if let Err(e) = write_atomic(&path, &seal_csv(&dataset::dataset_to_csv(&data.instances))) {
            eprintln!("# WARNING: could not write dataset cache {path}: {e}");
        }
    }
    (data, report.quarantined())
}

/// Appends the checksum footer (`#fnv <hex>`, the checkpoint-v3 FNV-1a
/// framing) to a CSV cache body. [`unseal_csv`] is the inverse.
pub fn seal_csv(body: &str) -> String {
    let crc = faults::fnv1a(faults::FNV_OFFSET, body.as_bytes());
    format!("{body}#fnv {crc:016x}\n")
}

/// Verifies and strips a cache file's checksum footer, returning the CSV
/// body. A missing or mismatched footer is an error string for the caller
/// to log as a cache miss — never a panic, since regenerating is always
/// safe.
pub fn unseal_csv(text: &str) -> Result<&str, String> {
    let trimmed = text.strip_suffix('\n').unwrap_or(text);
    let (body, footer) = match trimmed.rfind('\n') {
        Some(i) => (&text[..i + 1], &trimmed[i + 1..]),
        None => ("", trimmed),
    };
    let Some(stored) = footer.strip_prefix("#fnv ") else {
        return Err("missing checksum footer (pre-checksum or truncated cache)".to_owned());
    };
    let stored =
        u64::from_str_radix(stored, 16).map_err(|_| "malformed checksum footer".to_owned())?;
    let actual = faults::fnv1a(faults::FNV_OFFSET, body.as_bytes());
    if stored != actual {
        return Err(format!(
            "checksum mismatch (stored {stored:016x}, computed {actual:016x})"
        ));
    }
    Ok(body)
}

/// Writes `contents` to `path` atomically: a unique temp file in the same
/// directory (same filesystem, so the rename cannot cross devices) followed
/// by a rename. Readers either see the old file or the complete new one,
/// never a torn prefix.
fn write_atomic(path: &str, contents: &str) -> std::io::Result<()> {
    if let Some(fault) = faults::inject("cache.write") {
        let written = match fault.action {
            faults::Action::Torn => contents.len() / 2,
            _ => 0,
        };
        match fault.action {
            faults::Action::Io => {}
            faults::Action::Torn => {
                // Models the pre-atomic failure mode (a torn prefix at the
                // final path), which is exactly what the checksum footer
                // exists to catch on the next load.
                std::fs::write(path, &contents.as_bytes()[..written])?;
            }
            _ => fault.unsupported("cache.write"),
        }
        return Err(std::io::Error::other(format!(
            "injected fault: cache.write {} after {written} of {} bytes (occurrence {})",
            fault.action,
            contents.len(),
            fault.occurrence
        )));
    }
    let tmp = format!("{path}.tmp.{}", std::process::id());
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

/// One cell of a results table.
#[derive(Debug, Clone)]
pub struct EvalResult {
    /// Method row label (e.g. `"SVR RBF"`, `"ICNet-NN"`).
    pub method: String,
    /// Feature-set column group.
    pub feature_set: FeatureSet,
    /// Aggregation column (`"Sum"`, `"Mean"`, or `"NN"`).
    pub aggregation: String,
    /// Test-set MSE on log-runtime, or `None` when the method was not
    /// applicable (the paper's `N/A` cells).
    pub mse: Option<f64>,
    /// Why the method was N/A, when it was.
    pub note: String,
}

/// Selects the rows of `x` indexed by `idx`.
pub fn take_rows(x: &Matrix, idx: &[usize]) -> Matrix {
    Matrix::from_fn(idx.len(), x.cols(), |r, c| x.get(idx[r], c))
}

/// Selects the entries of `y` indexed by `idx`.
pub fn take(y: &[f64], idx: &[usize]) -> Vec<f64> {
    idx.iter().map(|&i| y[i]).collect()
}

/// Evaluates every classical baseline on the flat encoding for one
/// (feature set, aggregation) setting.
pub fn evaluate_baselines(
    data: &Dataset,
    split: &Split,
    roster: &[BaselineKind],
    fs: FeatureSet,
    agg: FlatAggregation,
) -> Vec<EvalResult> {
    let x = flat_features(
        &data.circuit,
        &data.instances,
        fs,
        StructureEncoding::Adjacency,
        agg,
    );
    let y = data.labels();
    let x_train = take_rows(&x, &split.train);
    let y_train = take(&y, &split.train);
    let x_test = take_rows(&x, &split.test);
    let y_test = take(&y, &split.test);

    roster
        .iter()
        .map(|kind| {
            let mut model = kind.build(&x_train);
            match model.fit(&x_train, &y_train) {
                Ok(()) => {
                    let pred = model.predict(&x_test);
                    EvalResult {
                        method: kind.label().to_owned(),
                        feature_set: fs,
                        aggregation: agg.label().to_owned(),
                        mse: Some(metrics::mse(&pred, &y_test)),
                        note: String::new(),
                    }
                }
                Err(e) => EvalResult {
                    method: kind.label().to_owned(),
                    feature_set: fs,
                    aggregation: agg.label().to_owned(),
                    mse: None,
                    note: e.to_string(),
                },
            }
        })
        .collect()
}

/// A trained GNN bundled with its graph operator and the label scaling used
/// during training, predicting in original (log-seconds) units.
#[derive(Debug, Clone)]
pub struct TrainedGnn {
    /// The fitted model.
    pub model: GraphModel,
    /// The graph operator it was trained with.
    pub op: Arc<tensor::CsrMatrix>,
    /// Feature set the model expects.
    pub feature_set: FeatureSet,
    y_mean: f64,
    y_std: f64,
}

impl TrainedGnn {
    /// Predicts the log-runtime of one instance (original label units).
    pub fn predict(&self, x: &Matrix) -> f64 {
        self.model.predict(&self.op, x) * self.y_std + self.y_mean
    }

    /// Learned feature-attention distribution (see
    /// [`GraphModel::feature_attention`]).
    pub fn feature_attention(&self) -> Option<Vec<f64>> {
        self.model.feature_attention()
    }
}

/// Trains and evaluates one GNN configuration; returns the result and the
/// trained model (for attention introspection and Figure 3 series).
///
/// Labels are standardized (zero mean, unit variance on the training split)
/// for the optimization and un-standardized for the reported MSE, which
/// keeps every method's MSE on the same scale.
pub fn evaluate_gnn(
    data: &Dataset,
    split: &Split,
    kind: ModelKind,
    agg: Aggregation,
    fs: FeatureSet,
    epochs: usize,
    seed: u64,
) -> (EvalResult, TrainedGnn) {
    let config = TrainConfig {
        max_epochs: epochs,
        lr: 5e-3,
        ..TrainConfig::default()
    };
    evaluate_gnn_with(data, split, kind, agg, fs, &config, seed)
}

/// [`evaluate_gnn`] with full control over the training configuration
/// (learning rate, worker threads, ...).
pub fn evaluate_gnn_with(
    data: &Dataset,
    split: &Split,
    kind: ModelKind,
    agg: Aggregation,
    fs: FeatureSet,
    config: &TrainConfig,
    seed: u64,
) -> (EvalResult, TrainedGnn) {
    evaluate_gnn_ctl(
        data,
        split,
        kind,
        agg,
        fs,
        config,
        seed,
        &icnet::TrainControl::default(),
    )
}

/// The reusable training core: fits one GNN configuration on the instances
/// of `data` indexed by `train_idx`, standardizing labels on that training
/// set, and returns the fitted model with its training report. Shared by
/// [`evaluate_gnn_ctl`] (which evaluates on the same dataset's test split)
/// and the cross-scheme study (which evaluates the returned model on
/// *other* schemes' datasets via [`eval_gnn_metrics`]).
#[allow(clippy::too_many_arguments)]
pub fn train_gnn_ctl(
    data: &Dataset,
    train_idx: &[usize],
    kind: ModelKind,
    agg: Aggregation,
    fs: FeatureSet,
    config: &TrainConfig,
    seed: u64,
    control: &icnet::TrainControl,
) -> (TrainedGnn, icnet::TrainReport) {
    let graph = icnet::CircuitGraph::from_circuit(&data.circuit);
    let op = Arc::new(kind.operator(&graph));
    let y = data.labels();

    let y_train_raw = take(&y, train_idx);
    let y_mean = y_train_raw.iter().sum::<f64>() / y_train_raw.len() as f64;
    let y_var = y_train_raw
        .iter()
        .map(|v| (v - y_mean) * (v - y_mean))
        .sum::<f64>()
        / y_train_raw.len() as f64;
    let y_std = y_var.sqrt().max(1e-9);
    let y_train: Vec<f64> = y_train_raw.iter().map(|v| (v - y_mean) / y_std).collect();

    let hidden = 16;
    let mut model = GraphModel::new(kind, agg, fs.width(), hidden, hidden, seed);
    let xs_train: Vec<Matrix> = train_idx
        .iter()
        .map(|&i| icnet::encode_features(&data.circuit, &data.instances[i].selected, fs))
        .collect();
    let report = icnet::train_with(&mut model, &op, &xs_train, &y_train, config, control);

    (
        TrainedGnn {
            model,
            op,
            feature_set: fs,
            y_mean,
            y_std,
        },
        report,
    )
}

/// Metrics of a trained GNN on the instances of `data` indexed by `idx`:
/// `(MSE, Pearson r)` in original log-runtime units. The dataset need not
/// be the one the model was trained on — this is the evaluation half of a
/// cross-scheme cell — but its circuit must have the same gate count (the
/// graph operator is baked into the model).
pub fn eval_gnn_metrics(trained: &TrainedGnn, data: &Dataset, idx: &[usize]) -> (f64, f64) {
    let y = data.labels();
    let pred: Vec<f64> = idx
        .iter()
        .map(|&i| {
            let x = icnet::encode_features(
                &data.circuit,
                &data.instances[i].selected,
                trained.feature_set,
            );
            trained.predict(&x)
        })
        .collect();
    let y_eval = take(&y, idx);
    (
        metrics::mse(&pred, &y_eval),
        metrics::pearson(&pred, &y_eval),
    )
}

/// [`evaluate_gnn_with`] under runtime controls: cooperative interruption
/// and crash-safe epoch checkpoints (see [`icnet::train_with`]). An
/// interrupted cell reports the paper-style N/A — its half-trained
/// parameters must not masquerade as a converged MSE.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_gnn_ctl(
    data: &Dataset,
    split: &Split,
    kind: ModelKind,
    agg: Aggregation,
    fs: FeatureSet,
    config: &TrainConfig,
    seed: u64,
    control: &icnet::TrainControl,
) -> (EvalResult, TrainedGnn) {
    let (trained, report) = train_gnn_ctl(data, &split.train, kind, agg, fs, config, seed, control);
    let suffix = if agg == Aggregation::Nn { "-NN" } else { "" };
    let method = format!("{}{}", kind.label(), suffix);
    if let Some(e) = &report.checkpoint_error {
        eprintln!("# WARNING: could not checkpoint {method} training: {e}");
    }
    // A diverged run has no meaningful test MSE — report the paper-style
    // N/A cell instead of evaluating the (pre-divergence) parameters.
    if report.diverged {
        return (
            EvalResult {
                method,
                feature_set: fs,
                aggregation: agg.label().to_owned(),
                mse: None,
                note: format!("diverged: non-finite loss in epoch {}", report.epochs_run),
            },
            trained,
        );
    }
    if report.interrupted {
        return (
            EvalResult {
                method,
                feature_set: fs,
                aggregation: agg.label().to_owned(),
                mse: None,
                note: format!("interrupted after epoch {}", report.epochs_run),
            },
            trained,
        );
    }
    let (mse, _pearson) = eval_gnn_metrics(&trained, data, &split.test);
    (
        EvalResult {
            method,
            feature_set: fs,
            aggregation: agg.label().to_owned(),
            mse: Some(mse),
            note: String::new(),
        },
        trained,
    )
}

/// One independently evaluable cell of the Table I/II grid.
#[derive(Debug, Clone, Copy)]
enum SuiteCell {
    Baselines {
        fs: FeatureSet,
        agg: FlatAggregation,
    },
    Gnn {
        kind: ModelKind,
        fs: FeatureSet,
        agg: Aggregation,
    },
}

impl SuiteCell {
    /// The full grid, in the order the serial suite has always emitted it:
    /// the four baseline groups, then the 18 GNN configurations.
    fn grid() -> Vec<SuiteCell> {
        let mut cells = Vec::new();
        for fs in [FeatureSet::Location, FeatureSet::All] {
            for agg in [FlatAggregation::Sum, FlatAggregation::Mean] {
                cells.push(SuiteCell::Baselines { fs, agg });
            }
        }
        for kind in [
            ModelKind::ChebNet { k: 3 },
            ModelKind::Gcn,
            ModelKind::ICNet,
        ] {
            for fs in [FeatureSet::Location, FeatureSet::All] {
                for agg in [Aggregation::Sum, Aggregation::Mean, Aggregation::Nn] {
                    cells.push(SuiteCell::Gnn { kind, fs, agg });
                }
            }
        }
        cells
    }

    /// Human-readable cell label (method / feature set / aggregation), used
    /// in progress lines and per-cell observability events.
    fn label(self) -> String {
        match self {
            SuiteCell::Baselines { fs, agg } => {
                format!("baselines {} / {}", fs.label(), agg.label())
            }
            SuiteCell::Gnn { kind, fs, agg } => {
                format!("{} {} / {}", kind.label(), fs.label(), agg.label())
            }
        }
    }

    fn evaluate(
        self,
        data: &Dataset,
        split: &Split,
        roster: &[BaselineKind],
        epochs: usize,
        seed: u64,
        control: &SuiteControl,
    ) -> Vec<EvalResult> {
        let label = self.label();
        eprintln!("#   {label} ...");
        let observing = obs::enabled();
        let cell_started = observing.then(std::time::Instant::now);
        if observing {
            obs::emit(obs::EventKind::CellStarted {
                label: label.clone(),
            });
        }
        let results = match self {
            SuiteCell::Baselines { fs, agg } => evaluate_baselines(data, split, roster, fs, agg),
            SuiteCell::Gnn { kind, fs, agg } => {
                let config = TrainConfig {
                    max_epochs: epochs,
                    lr: 5e-3,
                    ..TrainConfig::default()
                };
                let (result, _) = evaluate_gnn_ctl(
                    data,
                    split,
                    kind,
                    agg,
                    fs,
                    &config,
                    seed,
                    &control.train_control(&label, dataset_tag(data)),
                );
                vec![result]
            }
        };
        if observing {
            obs::emit(obs::EventKind::CellFinished {
                label,
                wall_ns: cell_started
                    .map(|t| t.elapsed().as_nanos() as u64)
                    .unwrap_or(0),
            });
        }
        results
    }
}

/// Runtime controls for the evaluation suite: cooperative interruption (the
/// workers stop claiming cells, training stops at an epoch boundary) and
/// per-cell crash-safe training checkpoints.
#[derive(Debug, Clone, Default)]
pub struct SuiteControl {
    /// Interrupt token polled between cells and between training epochs.
    pub cancel: Option<attack::CancelToken>,
    /// Directory receiving one training checkpoint per GNN cell (named by
    /// the cell's label slug plus a dataset tag); `None` disables training
    /// checkpoints.
    pub train_checkpoint_dir: Option<String>,
}

impl SuiteControl {
    fn train_control(&self, label: &str, dataset_tag: u64) -> icnet::TrainControl {
        icnet::TrainControl {
            cancel: self.cancel.clone(),
            checkpoint: self
                .train_checkpoint_dir
                .as_ref()
                .map(|dir| icnet::TrainCheckpointSpec {
                    // The tag keys the file to the exact training set. A
                    // resumed sweep whose dataset changed under it — e.g.
                    // a raised memory budget turned quarantined instances
                    // into fresh labels — starts those cells from scratch
                    // instead of tripping the trainer's fingerprint guard
                    // on a checkpoint from the smaller dataset.
                    path: format!("{dir}/{}-{dataset_tag:016x}.ckpt", slug(label)),
                    resume: true,
                }),
            heartbeat: None,
        }
    }
}

/// Deterministic tag of a dataset's supervision: instance count plus every
/// log-runtime label, in order. Two runs see the same tag iff training
/// would see the same targets.
fn dataset_tag(data: &Dataset) -> u64 {
    let mut h = faults::fnv1a(faults::FNV_OFFSET, &data.instances.len().to_le_bytes());
    for label in data.labels() {
        h = faults::fnv1a(h, &label.to_bits().to_le_bytes());
    }
    h
}

/// Filesystem-safe slug of a cell label (`"ICNet All feat / NN"` →
/// `"icnet-all-feat---nn"`).
fn slug(label: &str) -> String {
    label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '-'
            }
        })
        .collect()
}

/// The full Table I/II sweep: every baseline and every GNN under both
/// feature sets and both fixed aggregations, plus the `-NN` variants.
/// Serial; see [`run_mse_suite_jobs`] for the multi-worker variant.
pub fn run_mse_suite(
    data: &Dataset,
    roster: &[BaselineKind],
    epochs: usize,
    seed: u64,
) -> Vec<EvalResult> {
    run_mse_suite_jobs(data, roster, epochs, seed, 1)
}

/// [`run_mse_suite`] with the (method × feature-set × aggregation) grid
/// fanned out across `jobs` worker threads.
///
/// Every cell is self-contained (it builds its own features, operator, and
/// seeded model) and its results land in the slot of its grid position, so
/// the output is numerically identical for every `jobs` value — only the
/// wall clock and the interleaving of progress lines change.
pub fn run_mse_suite_jobs(
    data: &Dataset,
    roster: &[BaselineKind],
    epochs: usize,
    seed: u64,
    jobs: usize,
) -> Vec<EvalResult> {
    run_mse_suite_ctl(data, roster, epochs, seed, jobs, &SuiteControl::default())
}

/// [`run_mse_suite_jobs`] under a [`SuiteControl`]. When the control's
/// interrupt token trips, workers finish their current cell and stop
/// claiming new ones; the completed cells are returned in grid order (the
/// caller decides whether a partial grid is worth rendering — the binaries
/// exit with the interrupt status instead).
pub fn run_mse_suite_ctl(
    data: &Dataset,
    roster: &[BaselineKind],
    epochs: usize,
    seed: u64,
    jobs: usize,
    control: &SuiteControl,
) -> Vec<EvalResult> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    if let Some(dir) = &control.train_checkpoint_dir {
        std::fs::create_dir_all(dir).expect("create training checkpoint dir");
    }
    let split = train_test_split(data.instances.len(), 0.25, seed);
    let cells = SuiteCell::grid();
    let jobs = jobs.clamp(1, cells.len());
    let slots: Mutex<Vec<Option<Vec<EvalResult>>>> = Mutex::new(vec![None; cells.len()]);
    let next = AtomicUsize::new(0);
    let interrupted = || {
        control
            .cancel
            .as_ref()
            .is_some_and(attack::CancelToken::is_cancelled)
    };
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                if interrupted() {
                    break;
                }
                let k = next.fetch_add(1, Ordering::Relaxed);
                if k >= cells.len() {
                    break;
                }
                let out = cells[k].evaluate(data, &split, roster, epochs, seed, control);
                slots.lock().expect("suite worker panicked")[k] = Some(out);
            });
        }
    });
    let slots = slots.into_inner().expect("suite worker panicked");
    if interrupted() {
        return slots.into_iter().flatten().collect::<Vec<_>>().concat();
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every suite cell evaluated"))
        .collect::<Vec<_>>()
        .concat()
}

/// Percentage of attack runtime saved by predicting it instead of running
/// the attack: `100 * (1 - inference / attack)`, the paper's §IV-C claim
/// (~1.13 s of inference against up to 2411 s of solver time ≈ 99.95 %).
///
/// Returns 0.0 when `attack_seconds` is not a positive finite number — a
/// zero-cost attack has nothing to save, and NaN must not leak into report
/// output.
pub fn percent_saved(inference_seconds: f64, attack_seconds: f64) -> f64 {
    if attack_seconds <= 0.0 || !attack_seconds.is_finite() || !inference_seconds.is_finite() {
        return 0.0;
    }
    100.0 * (1.0 - inference_seconds / attack_seconds)
}

/// Formats an MSE value the way the paper's tables do.
pub fn format_mse(v: Option<f64>) -> String {
    match v {
        None => "N/A".to_owned(),
        Some(v) if !v.is_finite() => "inf".to_owned(),
        Some(v) if v != 0.0 && (v.abs() >= 1e4 || v.abs() < 1e-3) => format!("{v:.4e}"),
        Some(v) => format!("{v:.4}"),
    }
}

/// Renders the Table I/II layout: one row per method, column groups
/// `Location {Sum, Mean}` and `All feat {Sum, Mean}`; `-NN` rows carry one
/// value per feature-set group.
pub fn format_table(results: &[EvalResult]) -> String {
    use std::fmt::Write as _;
    let mut rows: Vec<String> = Vec::new();
    for r in results {
        if !rows.contains(&r.method) {
            rows.push(r.method.clone());
        }
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:>12} {:>12} {:>12} {:>12}",
        "Method", "Loc/Sum", "Loc/Mean", "All/Sum", "All/Mean"
    );
    let cell = |method: &str, fs: FeatureSet, agg: &str| -> String {
        results
            .iter()
            .find(|r| r.method == method && r.feature_set == fs && r.aggregation == agg)
            .map(|r| format_mse(r.mse))
            .unwrap_or_default()
    };
    for method in rows {
        if method.ends_with("-NN") {
            let loc = cell(&method, FeatureSet::Location, "NN");
            let all = cell(&method, FeatureSet::All, "NN");
            let _ = writeln!(out, "{method:<12} {loc:>25} {all:>25}");
        } else {
            let _ = writeln!(
                out,
                "{:<12} {:>12} {:>12} {:>12} {:>12}",
                method,
                cell(&method, FeatureSet::Location, "Sum"),
                cell(&method, FeatureSet::Location, "Mean"),
                cell(&method, FeatureSet::All, "Sum"),
                cell(&method, FeatureSet::All, "Mean"),
            );
        }
    }
    out
}

/// Serializes results as CSV (for EXPERIMENTS.md bookkeeping).
pub fn results_to_csv(results: &[EvalResult]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("method,feature_set,aggregation,mse,note\n");
    for r in results {
        let _ = writeln!(
            out,
            "{},{},{},{},{}",
            r.method,
            r.feature_set.label(),
            r.aggregation,
            r.mse.map(|v| v.to_string()).unwrap_or_else(|| "NA".into()),
            r.note.replace(',', ";")
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::{generate, DatasetConfig};

    fn tiny_dataset() -> Dataset {
        let mut config = DatasetConfig::quick_demo();
        config.num_instances = 12;
        generate(&config).expect("demo dataset generates")
    }

    #[test]
    fn take_rows_selects() {
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let sub = take_rows(&x, &[2, 0]);
        assert_eq!(sub, Matrix::from_rows(&[&[5.0, 6.0], &[1.0, 2.0]]));
        assert_eq!(take(&[10.0, 20.0, 30.0], &[1]), vec![20.0]);
    }

    #[test]
    fn baselines_evaluate_on_a_real_dataset() {
        let data = tiny_dataset();
        let split = train_test_split(data.instances.len(), 0.25, 1);
        let results = evaluate_baselines(
            &data,
            &split,
            &[BaselineKind::Lr, BaselineKind::Rr, BaselineKind::Theil],
            FeatureSet::All,
            FlatAggregation::Mean,
        );
        assert_eq!(results.len(), 3);
        // LR and RR produce finite MSE; Theil is N/A here (too few samples
        // for the ~200-dim flat encoding), matching the paper's N/A cells.
        assert!(results[0].mse.is_some());
        assert!(results[1].mse.is_some());
        assert!(results[2].mse.is_none());
        assert!(results[2].note.contains("degenerate"));
    }

    #[test]
    fn gnn_evaluates_on_a_real_dataset() {
        let data = tiny_dataset();
        let split = train_test_split(data.instances.len(), 0.25, 1);
        let (result, model) = evaluate_gnn(
            &data,
            &split,
            ModelKind::ICNet,
            Aggregation::Nn,
            FeatureSet::All,
            10,
            1,
        );
        assert!(result.mse.expect("gnn always fits").is_finite());
        assert_eq!(result.method, "ICNet-NN");
        assert!(model.feature_attention().is_some());
    }

    #[test]
    fn diverged_training_reports_na_cell() {
        // An absurd learning rate overflows the squared residual after the
        // first optimizer step; the cell must come back as the paper-style
        // N/A instead of a NaN MSE.
        let data = tiny_dataset();
        let split = train_test_split(data.instances.len(), 0.25, 1);
        let config = TrainConfig {
            max_epochs: 10,
            lr: 1e80,
            ..TrainConfig::default()
        };
        let (result, _) = evaluate_gnn_with(
            &data,
            &split,
            ModelKind::ICNet,
            Aggregation::Sum,
            FeatureSet::All,
            &config,
            1,
        );
        assert!(result.mse.is_none(), "diverged run must be N/A");
        assert!(result.note.contains("diverged"), "note: {}", result.note);
        assert_eq!(format_mse(result.mse), "N/A");
    }

    #[test]
    fn suite_results_are_independent_of_jobs() {
        let data = tiny_dataset();
        let roster = [BaselineKind::Lr, BaselineKind::Rr];
        let serial = run_mse_suite_jobs(&data, &roster, 3, 1, 1);
        let parallel = run_mse_suite_jobs(&data, &roster, 3, 1, 4);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.method, b.method);
            assert_eq!(a.feature_set, b.feature_set);
            assert_eq!(a.aggregation, b.aggregation);
            assert_eq!(
                a.mse,
                b.mse,
                "{} {} {}",
                a.method,
                a.feature_set.label(),
                a.aggregation
            );
            assert_eq!(a.note, b.note);
        }
    }

    #[test]
    fn corrupt_cache_is_a_miss_not_a_panic() {
        // A crash mid-write used to leave a torn CSV that the next run
        // `expect`ed into a panic; now it must log, regenerate, and replace
        // the cache atomically.
        let mut config = DatasetConfig::quick_demo();
        config.num_instances = 4;
        let out_dir = std::env::temp_dir()
            .join(format!("bench-cache-test-{}", std::process::id()))
            .display()
            .to_string();
        std::fs::create_dir_all(&out_dir).unwrap();
        let path = dataset_cache_path(&config, &out_dir);
        std::fs::write(&path, "selected,key_bits,iter").unwrap(); // torn header

        let data = load_or_generate_parallel(&config, &out_dir, 1, None);
        assert_eq!(data.instances.len(), 4);
        // The cache was rewritten with a complete, checksummed dataset...
        let text = std::fs::read_to_string(&path).unwrap();
        let body = unseal_csv(&text).expect("rewritten cache is sealed");
        let reloaded = dataset::dataset_from_csv(body).expect("rewritten cache parses");
        assert_eq!(reloaded, data.instances);
        // ...and a second load is a clean cache hit with identical labels.
        let again = load_or_generate_parallel(&config, &out_dir, 1, None);
        assert_eq!(again.instances, data.instances);
        // No temp file left behind by the atomic write.
        assert!(!std::path::Path::new(&format!("{path}.tmp.{}", std::process::id())).exists());
        let _ = std::fs::remove_dir_all(&out_dir);
    }

    #[test]
    fn seal_round_trips_and_flags_a_flipped_byte() {
        let body = "method,mse\nLR,0.28\n";
        let sealed = seal_csv(body);
        assert_eq!(unseal_csv(&sealed).expect("clean seal verifies"), body);
        // Flip one payload byte: the footer must catch it.
        let mut bytes = sealed.into_bytes();
        bytes[8] ^= 0x01;
        let torn = String::from_utf8(bytes).unwrap();
        let err = unseal_csv(&torn).expect_err("flipped byte detected");
        assert!(err.contains("checksum mismatch"), "err: {err}");
        // Files that predate the footer (or lost their tail) are a distinct,
        // equally non-fatal miss.
        let err = unseal_csv(body).expect_err("missing footer detected");
        assert!(err.contains("missing checksum footer"), "err: {err}");
    }

    #[test]
    fn flipped_cache_byte_is_a_logged_miss_not_a_panic() {
        // Satellite of the fault-injection PR: a bit flip anywhere in a
        // cached dataset CSV must downgrade to a cache miss + regeneration
        // with identical labels, never a wrong-label cache hit.
        let mut config = DatasetConfig::quick_demo();
        config.num_instances = 4;
        let out_dir = std::env::temp_dir()
            .join(format!("bench-cache-flip-test-{}", std::process::id()))
            .display()
            .to_string();
        std::fs::create_dir_all(&out_dir).unwrap();
        let data = load_or_generate_parallel(&config, &out_dir, 1, None);

        let path = dataset_cache_path(&config, &out_dir);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] = if bytes[mid] == b'1' { b'2' } else { b'1' };
        std::fs::write(&path, &bytes).unwrap();

        let again = load_or_generate_parallel(&config, &out_dir, 1, None);
        assert_eq!(again.instances, data.instances, "regenerated, not trusted");
        let text = std::fs::read_to_string(&path).unwrap();
        unseal_csv(&text).expect("cache re-sealed after the miss");
        let _ = std::fs::remove_dir_all(&out_dir);
    }

    #[test]
    fn suite_control_slugs_cell_labels() {
        let ctl = SuiteControl {
            cancel: None,
            train_checkpoint_dir: Some("out/train".to_owned()),
        };
        let tc = ctl.train_control("ICNet All feat / NN", 0xDEAD_BEEF);
        let spec = tc.checkpoint.expect("checkpoint configured");
        assert_eq!(
            spec.path,
            "out/train/icnet-all-feat---nn-00000000deadbeef.ckpt"
        );
        assert!(spec.resume, "suite checkpoints always resume");
        assert!(ctl.train_control("x", 0).cancel.is_none());
    }

    #[test]
    fn percent_saved_matches_paper_claim() {
        // §IV-C: ~1.13 s of inference against 2411 s of attack ≈ 99.95 %.
        let saved = percent_saved(1.13, 2411.0);
        assert!((saved - 99.95).abs() < 0.005, "saved = {saved}");
        assert_eq!(percent_saved(0.0, 100.0), 100.0);
        assert_eq!(percent_saved(100.0, 100.0), 0.0);
        // Inference slower than the attack: negative savings, not clamped.
        assert!(percent_saved(2.0, 1.0) < 0.0);
    }

    #[test]
    fn percent_saved_degenerate_inputs_yield_zero() {
        // Instant or unmeasured attacks and non-finite inputs must not
        // produce NaN/inf in report output.
        assert_eq!(percent_saved(1.0, 0.0), 0.0);
        assert_eq!(percent_saved(1.0, -5.0), 0.0);
        assert_eq!(percent_saved(1.0, f64::NAN), 0.0);
        assert_eq!(percent_saved(f64::NAN, 10.0), 0.0);
        assert_eq!(percent_saved(1.0, f64::INFINITY), 0.0);
        assert!(percent_saved(1e-9, 1e-9).abs() < 1e-6);
    }

    #[test]
    fn formatting_matches_paper_style() {
        assert_eq!(format_mse(None), "N/A");
        assert_eq!(format_mse(Some(0.0843)), "0.0843");
        assert_eq!(format_mse(Some(2.145e25)), "2.1450e25");
        assert_eq!(format_mse(Some(0.0)), "0.0000");
    }

    #[test]
    fn table_renders_all_methods() {
        let results = vec![
            EvalResult {
                method: "LR".into(),
                feature_set: FeatureSet::Location,
                aggregation: "Sum".into(),
                mse: Some(0.28),
                note: String::new(),
            },
            EvalResult {
                method: "ICNet-NN".into(),
                feature_set: FeatureSet::Location,
                aggregation: "NN".into(),
                mse: Some(0.0843),
                note: String::new(),
            },
        ];
        let table = format_table(&results);
        assert!(table.contains("LR"));
        assert!(table.contains("ICNet-NN"));
        assert!(table.contains("0.0843"));
        let csv = results_to_csv(&results);
        assert!(csv.lines().count() == 3);
    }
}
