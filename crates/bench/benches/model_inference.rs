//! Criterion benchmark behind the paper's Section IV-C claim: ICNet
//! inference on the 1529-gate evaluation circuit is a single fast forward
//! pass (paper: ~1.13 s in their Python stack; the Rust forward pass is
//! measured here).

use criterion::{criterion_group, criterion_main, Criterion};
use icnet::{encode_features, Aggregation, CircuitGraph, FeatureSet, GraphModel, ModelKind};
use std::sync::Arc;

fn bench_inference(c: &mut Criterion) {
    let circuit = synth::iscas::circuit("c1529", 0).expect("profile");
    let graph = CircuitGraph::from_circuit(&circuit);
    let selected: Vec<netlist::GateId> = circuit
        .iter()
        .filter(|(_, g)| !g.kind().is_input())
        .map(|(id, _)| id)
        .take(100)
        .collect();
    let x = encode_features(&circuit, &selected, FeatureSet::All);

    let mut group = c.benchmark_group("model_inference_c1529");
    for kind in [
        ModelKind::Gcn,
        ModelKind::ChebNet { k: 3 },
        ModelKind::ICNet,
    ] {
        let op = Arc::new(kind.operator(&graph));
        let model = GraphModel::new(kind, Aggregation::Nn, 7, 16, 16, 1);
        group.bench_function(kind.label(), |b| {
            b.iter(|| model.predict(&op, &x));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
