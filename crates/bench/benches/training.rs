//! Criterion benchmarks for the training engine: one training epoch
//! (per-instance reference vs. the batched engine at several batch sizes,
//! serial vs. data-parallel), batch prediction, and the Table I/II
//! evaluation-suite wall clock at several worker counts. The first recorded
//! numbers live in `BENCH_train.json` at the repo root so later changes
//! have a perf trajectory to compare against.

use bench::harness::run_mse_suite_jobs;
use bench::methods::BaselineKind;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dataset::DatasetConfig;
use icnet::{
    encode_features, train, Aggregation, CircuitGraph, FeatureSet, GradEngine, GraphModel,
    ModelKind, TrainConfig,
};
use std::sync::Arc;
use tensor::Matrix;

/// A small supervised task on c432: one instance per key-gate count.
fn c432_task() -> (Arc<tensor::CsrMatrix>, Vec<Matrix>, Vec<f64>) {
    let circuit = synth::iscas::circuit("c432", 0).expect("profile");
    let graph = CircuitGraph::from_circuit(&circuit);
    let op = Arc::new(ModelKind::ICNet.operator(&graph));
    let logic: Vec<netlist::GateId> = circuit
        .iter()
        .filter(|(_, g)| !g.kind().is_input())
        .map(|(id, _)| id)
        .collect();
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for n in 1..=32usize {
        let sel: Vec<netlist::GateId> = logic.iter().copied().take(n).collect();
        xs.push(encode_features(&circuit, &sel, FeatureSet::All));
        ys.push(n as f64 * 0.1);
    }
    (op, xs, ys)
}

/// CI smoke mode: one sample of the reference engine and one of the
/// batched engine, so the job proves the bench compiles and both engines
/// still train without paying for full sample counts on shared runners.
fn smoke() -> bool {
    std::env::var_os("TRAIN_BENCH_SMOKE").is_some()
}

/// One probe run per cell prints the deterministic peak-tape figure for
/// `BENCH_train.json`'s memory trajectory. Logical bytes are a pure
/// function of the configuration (see the `budget` crate), so a single run
/// — not a sampled distribution — is the whole measurement.
fn report_peak_tape_bytes(
    cell: &str,
    op: &Arc<tensor::CsrMatrix>,
    xs: &[Matrix],
    ys: &[f64],
    config: &TrainConfig,
) {
    let mut model = GraphModel::new(ModelKind::ICNet, Aggregation::Nn, 7, 16, 16, 1);
    let report = train(&mut model, op, xs, ys, config);
    println!(
        "# train_epoch_c432/{cell} peak_tape_bytes = {}",
        report.peak_tape_bytes
    );
}

fn bench_train_epoch(c: &mut Criterion) {
    let (op, xs, ys) = c432_task();
    let mut group = c.benchmark_group("train_epoch_c432");
    group.sample_size(if smoke() { 1 } else { 10 });
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    // The historical `jobs_{n}` variants pin the per-instance reference
    // engine so their trajectory stays comparable across PRs; the batched
    // engine gets its own explicitly-named variants below.
    for jobs in [1usize, 2, 4] {
        if jobs > 1 && (cores < 2 || smoke()) {
            continue; // no point timing oversubscription
        }
        let config = TrainConfig {
            max_epochs: 1,
            batch_size: 16,
            jobs,
            engine: GradEngine::PerInstance,
            ..TrainConfig::default()
        };
        report_peak_tape_bytes(&format!("jobs_{jobs}"), &op, &xs, &ys, &config);
        group.bench_function(format!("jobs_{jobs}"), |b| {
            b.iter(|| {
                let mut model = GraphModel::new(ModelKind::ICNet, Aggregation::Nn, 7, 16, 16, 1);
                black_box(train(&mut model, &op, &xs, &ys, &config))
            });
        });
    }
    // One block-diagonal tape per chunk instead of one tape per instance.
    // The task has 32 instances, so B=64 degenerates to one full batch of
    // 32 — recorded anyway to show the amortisation flattening out.
    for batch in [4usize, 16, 64] {
        if smoke() && batch != 16 {
            continue;
        }
        let config = TrainConfig {
            max_epochs: 1,
            batch_size: batch,
            jobs: 1,
            engine: GradEngine::Batched,
            ..TrainConfig::default()
        };
        report_peak_tape_bytes(&format!("batched_B{batch}"), &op, &xs, &ys, &config);
        group.bench_function(format!("batched_B{batch}"), |b| {
            b.iter(|| {
                let mut model = GraphModel::new(ModelKind::ICNet, Aggregation::Nn, 7, 16, 16, 1);
                black_box(train(&mut model, &op, &xs, &ys, &config))
            });
        });
    }
    group.finish();
}

fn bench_predict(c: &mut Criterion) {
    let (op, xs, _) = c432_task();
    let model = GraphModel::new(ModelKind::ICNet, Aggregation::Nn, 7, 16, 16, 1);
    let mut group = c.benchmark_group("predict_c432");
    if smoke() {
        group.sample_size(10);
    }
    group.bench_function("batch_32", |b| {
        b.iter(|| black_box(model.predict_batch(&op, &xs)));
    });
    group.finish();
}

fn bench_suite(c: &mut Criterion) {
    if smoke() {
        // Label generation (SAT attacks) dominates this group; the dataset
        // path already has its own CI coverage (obs-smoke, chaos-smoke).
        return;
    }
    let mut config = DatasetConfig::quick_demo();
    config.num_instances = 12;
    let data = dataset::generate(&config).expect("demo dataset");
    let roster = [BaselineKind::Lr, BaselineKind::Rr];
    let mut group = c.benchmark_group("mse_suite_quick_demo");
    group.sample_size(10);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    for jobs in [1usize, 4] {
        if jobs > 1 && cores < 2 {
            continue;
        }
        group.bench_function(format!("jobs_{jobs}"), |b| {
            b.iter(|| black_box(run_mse_suite_jobs(&data, &roster, 3, 1, jobs)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_train_epoch, bench_predict, bench_suite);
criterion_main!(benches);
