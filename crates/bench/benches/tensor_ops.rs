//! Criterion benchmarks of the numeric substrate.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use tensor::{CsrMatrix, Matrix, Tape};

fn circuit_sized_sparse(n: usize) -> CsrMatrix {
    // ~3 nonzeros per row, circuit-adjacency-like.
    let triplets: Vec<(usize, usize, f64)> = (0..n)
        .flat_map(|i| {
            [
                (i, (i * 7 + 1) % n, 1.0),
                (i, (i * 13 + 5) % n, 1.0),
                (i, i, 1.0),
            ]
        })
        .collect();
    CsrMatrix::from_triplets(n, n, &triplets)
}

fn bench_tensor(c: &mut Criterion) {
    let mut group = c.benchmark_group("tensor");

    let a = Matrix::from_fn(128, 128, |r, c| ((r * 31 + c * 17) % 13) as f64 / 13.0);
    let b = Matrix::from_fn(128, 128, |r, c| ((r * 19 + c * 29) % 11) as f64 / 11.0);
    group.bench_function("matmul_128", |bencher| {
        bencher.iter(|| a.matmul(&b));
    });

    let sparse = circuit_sized_sparse(1529);
    let dense = Matrix::from_fn(1529, 16, |r, c| ((r + c) % 7) as f64 / 7.0);
    group.bench_function("spmm_1529x16", |bencher| {
        bencher.iter(|| sparse.spmm(&dense));
    });

    let op = Arc::new(circuit_sized_sparse(1529));
    let x = Matrix::from_fn(1529, 7, |r, c| ((r * c) % 3) as f64);
    let w1 = Matrix::from_fn(7, 16, |r, c| ((r + c) % 5) as f64 / 5.0 - 0.4);
    let w2 = Matrix::from_fn(16, 16, |r, c| ((r * c) % 7) as f64 / 7.0 - 0.5);
    group.bench_function("autodiff_two_conv_backward", |bencher| {
        bencher.iter(|| {
            let mut tape = Tape::new();
            let xv = tape.constant(x.clone());
            let w1v = tape.leaf(w1.clone());
            let w2v = tape.leaf(w2.clone());
            let p1 = tape.spmm(Arc::clone(&op), xv);
            let h1 = tape.matmul(p1, w1v);
            let r1 = tape.relu(h1);
            let p2 = tape.spmm(Arc::clone(&op), r1);
            let h2 = tape.matmul(p2, w2v);
            let r2 = tape.relu(h2);
            let loss = tape.mean_all(r2);
            tape.backward(loss);
            tape.grad(w1v).get(0, 0)
        });
    });

    group.finish();
}

criterion_group!(benches, bench_tensor);
criterion_main!(benches);
