//! Criterion micro-benchmarks of the CDCL solver.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sat::{Lit, Solver};

/// Pigeonhole principle: n pigeons into n-1 holes (UNSAT, exercises clause
/// learning heavily).
fn pigeonhole(n: i64) -> Solver {
    let holes = n - 1;
    let mut s = Solver::new();
    s.new_vars((n * holes) as usize);
    let p = |i: i64, j: i64| Lit::from_dimacs(i * holes + j + 1);
    for i in 0..n {
        let clause: Vec<Lit> = (0..holes).map(|j| p(i, j)).collect();
        s.add_clause(clause);
    }
    for j in 0..holes {
        for i1 in 0..n {
            for i2 in (i1 + 1)..n {
                s.add_clause([!p(i1, j), !p(i2, j)]);
            }
        }
    }
    s
}

/// Deterministic random 3-SAT near the phase transition.
fn random_3sat(num_vars: u64, num_clauses: u64, seed: u64) -> Solver {
    let mut s = Solver::new();
    s.new_vars(num_vars as usize);
    let mut state = seed | 1;
    let mut next = move |bound: u64| {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        (state.wrapping_mul(0x2545F4914F6CDD1D) >> 33) % bound
    };
    for _ in 0..num_clauses {
        let clause: Vec<Lit> = (0..3)
            .map(|_| {
                let v = next(num_vars) as i64 + 1;
                Lit::from_dimacs(if next(2) == 0 { v } else { -v })
            })
            .collect();
        s.add_clause(clause);
    }
    s
}

fn bench_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("sat_solver");
    group.sample_size(10);

    group.bench_function("pigeonhole_7_unsat", |b| {
        b.iter_batched(
            || pigeonhole(7),
            |mut s| assert!(s.solve().is_unsat()),
            BatchSize::SmallInput,
        )
    });

    group.bench_function("random_3sat_150v_600c", |b| {
        b.iter_batched(
            || random_3sat(150, 600, 0xBEEF),
            |mut s| {
                let _ = s.solve();
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("incremental_assumptions", |b| {
        b.iter_batched(
            || random_3sat(100, 380, 0xACE),
            |mut s| {
                for i in 1..=8i64 {
                    let _ = s.solve_with_assumptions(&[Lit::from_dimacs(i)]);
                }
            },
            BatchSize::SmallInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_solver);
criterion_main!(benches);
