//! Criterion benchmarks of the full SAT attack (the label generator),
//! showing runtime growth with key-gate count — the phenomenon the paper
//! predicts.

use attack::{attack_locked, AttackConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use obfuscate::{lock_random, SchemeKind};
use synth::GeneratorConfig;

fn bench_attack(c: &mut Criterion) {
    let base = synth::generate(&GeneratorConfig::new("bench", 16, 8, 200).with_seed(11));
    let mut group = c.benchmark_group("sat_attack");
    group.sample_size(10);

    for &keys in &[2usize, 8, 16] {
        let locked = lock_random(&base, SchemeKind::XorLock, keys, 5).expect("lockable");
        group.bench_with_input(
            BenchmarkId::new("xor_lock_keys", keys),
            &locked,
            |b, locked| {
                b.iter(|| {
                    let result =
                        attack_locked(locked, &AttackConfig::default()).expect("attack runs");
                    assert!(result.key().is_some());
                })
            },
        );
    }

    let locked_lut =
        lock_random(&base, SchemeKind::LutLock { lut_size: 4 }, 4, 5).expect("lockable");
    group.bench_function("lut4_lock_4_gates", |b| {
        b.iter(|| {
            let result = attack_locked(&locked_lut, &AttackConfig::default()).expect("attack runs");
            assert!(result.key().is_some());
        })
    });

    group.bench_function("tseitin_encode_c1529", |b| {
        let circuit = synth::iscas::circuit("c1529", 0).expect("profile");
        b.iter(|| {
            let mut formula = cnf::CnfFormula::new();
            let enc = cnf::encode_circuit(&circuit, &mut formula);
            assert!(formula.num_clauses() > 0);
            enc
        })
    });

    group.finish();
}

criterion_group!(benches, bench_attack);
criterion_main!(benches);
