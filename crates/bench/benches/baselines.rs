//! Criterion benchmarks of the classical baseline fits on a
//! circuit-encoding-sized design matrix.

use bench::methods::BaselineKind;
use criterion::{criterion_group, criterion_main, Criterion};
use tensor::Matrix;

fn synthetic_problem(rows: usize, cols: usize) -> (Matrix, Vec<f64>) {
    // Hash-based fill: full-rank design (a short modular pattern would give
    // duplicate columns, which path algorithms like LARS rightly reject).
    let x = Matrix::from_fn(rows, cols, |r, c| {
        let mut h = (r as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (c as u64) << 17;
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^= h >> 29;
        (h % 1000) as f64 / 1000.0 - 0.5
    });
    let y: Vec<f64> = (0..rows)
        .map(|r| 2.0 * x.get(r, 0) - x.get(r, 1) + 0.1 * x.get(r, cols - 1))
        .collect();
    (x, y)
}

fn bench_baselines(c: &mut Criterion) {
    let (x, y) = synthetic_problem(120, 200);
    let mut group = c.benchmark_group("baseline_fit_120x200");
    group.sample_size(10);
    for kind in [
        BaselineKind::Lr,
        BaselineKind::Rr,
        BaselineKind::Lasso,
        BaselineKind::En,
        BaselineKind::SvrRbf,
        BaselineKind::Omp,
        BaselineKind::Lars,
        BaselineKind::Sgd,
    ] {
        group.bench_function(kind.label(), |b| {
            b.iter(|| {
                let mut model = kind.build(&x);
                model.fit(&x, &y).expect("fit succeeds");
                model.predict(&x)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
