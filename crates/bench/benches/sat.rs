//! Criterion suite over graded de-obfuscation miter instances — the
//! workload that dominates ground-truth label generation (`T(G)`).
//!
//! Each benchmark runs the full oracle-guided SAT attack on a locked
//! circuit of increasing size and scheme hardness (c17 → c432-scale,
//! XOR/MUX/LUT locked), so every solver-core change lands as a measured
//! number. Results are tracked in `BENCH_sat.json` at the repo root:
//! run `cargo bench -p bench --bench sat` and append a trajectory entry
//! whenever the solver core changes.
//!
//! The smallest instance (`c17_xor4`) doubles as the CI smoke benchmark;
//! see the `sat-bench-smoke` job.

use attack::{attack_locked, AttackConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use obfuscate::{lock_random, LockedCircuit, SchemeKind};
use synth::GeneratorConfig;

/// The graded instance ladder. Seeds are fixed so the miter structure is
/// identical across runs and across solver versions.
fn instances() -> Vec<(&'static str, LockedCircuit)> {
    let mid = synth::generate(&GeneratorConfig::new("sat_bench_mid", 16, 8, 200).with_seed(11));
    let c432 = synth::iscas::circuit("c432", 0).expect("c432 profile");
    vec![
        (
            "c17_xor4",
            lock_random(&netlist::c17(), SchemeKind::XorLock, 4, 7).expect("lockable"),
        ),
        (
            "mid200_mux12",
            lock_random(&mid, SchemeKind::MuxLock, 12, 5).expect("lockable"),
        ),
        (
            "c432_xor16",
            lock_random(&c432, SchemeKind::XorLock, 16, 3).expect("lockable"),
        ),
        (
            "c432_lut3x6",
            lock_random(&c432, SchemeKind::LutLock { lut_size: 3 }, 6, 3).expect("lockable"),
        ),
    ]
}

fn bench_miter_attacks(c: &mut Criterion) {
    // CI smoke mode: run only the smallest instance, once, so the job
    // proves the bench compiles and the ladder's attacks still converge
    // without paying for full sample counts on shared runners.
    let smoke = std::env::var_os("SAT_BENCH_SMOKE").is_some();
    let mut group = c.benchmark_group("sat_miter");
    group.sample_size(if smoke { 1 } else { 10 });
    for (name, locked) in instances() {
        if smoke && name != "c17_xor4" {
            continue;
        }
        group.bench_function(name, |b| {
            b.iter(|| {
                let result = attack_locked(&locked, &AttackConfig::default()).expect("attack runs");
                assert!(result.key().is_some(), "{name}: attack must converge");
                result.solver_stats.work()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_miter_attacks);
criterion_main!(benches);
