//! Zero-dependency deterministic fault injection for the
//! attack→dataset→training pipeline.
//!
//! PRs 2–4 grew recovery paths — quarantine, retry escalation, torn-cache
//! downgrade, divergence guards — that real failures reach in timing- and
//! input-dependent ways ad-hoc tests cannot reproduce. This crate makes
//! every such path *systematically* reachable: instrumented code declares
//! named fault **sites** ([`inject`]), and a seeded, replayable
//! [`FaultPlan`] decides — as a pure function of (site pattern, occurrence
//! index, ambient context, seed) — whether a given visit to a site fires a
//! fault and which [`Action`] it takes.
//!
//! The design mirrors `crates/obs`:
//!
//! * **Zero cost when disarmed.** [`inject`] is a single relaxed atomic
//!   load when no plan is armed — cheap enough for solver-inner-loop call
//!   sites. The acceptance bar is that an unarmed binary behaves
//!   *identically* to one built before this crate existed.
//! * **Process-global, explicitly armed.** [`arm`] installs a plan (and an
//!   optional observer that e.g. emits `obs` events); [`disarm`] removes it
//!   and returns every fault that fired, for test assertions.
//! * **Deterministic.** Occurrence counters are kept per site name, and a
//!   thread can pin an ambient context index ([`context`], set by dataset
//!   workers to their instance index) so plans can target "instance 2's
//!   first solver call" regardless of worker count or scheduling.
//!
//! # Plan grammar
//!
//! A plan is parsed from a `;`-separated spec (the `--fault-plan` flag):
//!
//! ```text
//! SPEC   := item (';' item)*
//! item   := 'seed=' u64 | rule
//! rule   := pattern ':' action ('@' select)?
//! pattern: site name, '*' matches any substring (e.g. 'checkpoint.*')
//! action := panic | unknown | torn | short | io | die | nan
//! select := 'o' N        fire on the N-th visit only (default: o0)
//!         | 'o' N '+'    fire on every visit from the N-th on
//!         | 'c' N        fire on every visit with ambient context N
//!         | 'p' FLOAT    fire with probability FLOAT, seeded Bernoulli
//! ```
//!
//! Examples: `sat.solve:panic@o2`, `checkpoint.append:torn`,
//! `seed=42;sat.solve:unknown@p0.25`, `dataset.worker:die@c3`.
//!
//! Which actions a site supports is the site's decision; a plan that asks a
//! site for an action it cannot perform panics loudly at the call site
//! (see [`Fault::unsupported`]) rather than silently skipping.
//!
//! ```
//! faults::arm_str("demo.site:io@o1", None).unwrap();
//! assert!(faults::inject("demo.site").is_none(), "o1 skips the first visit");
//! let fault = faults::inject("demo.site").expect("second visit fires");
//! assert_eq!(fault.action, faults::Action::Io);
//! assert_eq!(fault.occurrence, 1);
//! let fired = faults::disarm();
//! assert_eq!(fired.len(), 1);
//! assert!(!faults::enabled());
//! ```

use std::cell::Cell;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// 64-bit FNV-1a offset basis. Public because the checkpoint formats across
/// the workspace (`dataset::checkpoint` v3, the training checkpoint) share
/// this one checksum so corruption detection behaves identically everywhere.
pub const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

/// 64-bit FNV-1a over `bytes`, folded into `hash`. Each step is a bijection
/// on the 64-bit state, so any single-byte substitution changes the result.
pub fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// What an armed site is asked to do when its rule fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Panic at the site (isolated by the supervisor's `catch_unwind`).
    Panic,
    /// Return a spurious indeterminate result (`sat.solve` →
    /// `SolveResult::Unknown`).
    Unknown,
    /// Write roughly half the bytes, then fail — a crash mid-write.
    Torn,
    /// Write all but the final few bytes, then fail — a short write.
    Short,
    /// Fail the I/O operation without writing anything.
    Io,
    /// Kill the worker thread servicing the site (it quarantines its
    /// in-flight work and exits its loop).
    Die,
    /// Poison the next floating-point result with NaN.
    Nan,
}

impl Action {
    /// Stable lowercase tag (plan grammar and observer/event payloads).
    pub fn tag(&self) -> &'static str {
        match self {
            Action::Panic => "panic",
            Action::Unknown => "unknown",
            Action::Torn => "torn",
            Action::Short => "short",
            Action::Io => "io",
            Action::Die => "die",
            Action::Nan => "nan",
        }
    }

    /// Parses [`Action::tag`] output.
    pub fn from_tag(tag: &str) -> Option<Action> {
        match tag {
            "panic" => Some(Action::Panic),
            "unknown" => Some(Action::Unknown),
            "torn" => Some(Action::Torn),
            "short" => Some(Action::Short),
            "io" => Some(Action::Io),
            "die" => Some(Action::Die),
            "nan" => Some(Action::Nan),
            _ => None,
        }
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// When a matching rule fires relative to the site's visit counter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Select {
    /// The N-th visit to the site only (0-based).
    Occurrence(u64),
    /// Every visit from the N-th on.
    From(u64),
    /// Every visit whose thread carries ambient [`context`] N.
    Context(u64),
    /// Seeded Bernoulli: fire with this probability, decided by hashing
    /// (seed, site, occurrence) — replayable, independent of scheduling.
    Probability(f64),
}

/// One `pattern:action@select` rule of a plan.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRule {
    /// Site pattern; `*` matches any (possibly empty) substring.
    pub pattern: String,
    /// What to do when the rule fires.
    pub action: Action,
    /// Which visits fire.
    pub select: Select,
}

/// A parsed, armable fault plan. See the module docs for the grammar.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed for probabilistic selectors.
    pub seed: u64,
    /// Rules, checked in order; the first match wins.
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// Parses the `--fault-plan` spec grammar.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the offending item.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for item in spec.split(';') {
            let item = item.trim();
            if item.is_empty() {
                continue;
            }
            if let Some(seed) = item.strip_prefix("seed=") {
                plan.seed = seed
                    .parse()
                    .map_err(|_| format!("bad seed `{seed}` in `{item}`"))?;
                continue;
            }
            let (pattern, rest) = item
                .split_once(':')
                .ok_or_else(|| format!("rule `{item}` is not `pattern:action[@select]`"))?;
            let (action_str, select_str) = match rest.split_once('@') {
                Some((a, s)) => (a, Some(s)),
                None => (rest, None),
            };
            let action = Action::from_tag(action_str.trim())
                .ok_or_else(|| format!("unknown action `{action_str}` in `{item}`"))?;
            let select = match select_str.map(str::trim) {
                None => Select::Occurrence(0),
                Some(s) => parse_select(s).ok_or_else(|| {
                    format!("bad selector `{s}` in `{item}` (expected oN, oN+, cN, or pF)")
                })?,
            };
            if pattern.trim().is_empty() {
                return Err(format!("empty site pattern in `{item}`"));
            }
            plan.rules.push(FaultRule {
                pattern: pattern.trim().to_owned(),
                action,
                select,
            });
        }
        Ok(plan)
    }
}

fn parse_select(s: &str) -> Option<Select> {
    if let Some(num) = s.strip_prefix('o') {
        return if let Some(from) = num.strip_suffix('+') {
            from.parse().ok().map(Select::From)
        } else {
            num.parse().ok().map(Select::Occurrence)
        };
    }
    if let Some(num) = s.strip_prefix('c') {
        return num.parse().ok().map(Select::Context);
    }
    if let Some(p) = s.strip_prefix('p') {
        let p: f64 = p.parse().ok()?;
        return (0.0..=1.0).contains(&p).then_some(Select::Probability(p));
    }
    None
}

/// `*`-glob match: `*` matches any (possibly empty) substring.
fn pattern_matches(pattern: &str, site: &str) -> bool {
    let mut parts = pattern.split('*');
    let first = parts.next().unwrap_or("");
    if !site.starts_with(first) {
        return false;
    }
    let mut rest = &site[first.len()..];
    let mut segments: Vec<&str> = parts.collect();
    let last = segments.pop();
    for seg in segments {
        match rest.find(seg) {
            Some(i) => rest = &rest[i + seg.len()..],
            None => return false,
        }
    }
    match last {
        // The pattern did not contain '*': everything must have matched.
        None => rest.is_empty(),
        Some(last) => rest.ends_with(last),
    }
}

/// One fault a site has been asked to perform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fault {
    /// What to do.
    pub action: Action,
    /// 0-based visit index at which the site fired.
    pub occurrence: u64,
}

impl Fault {
    /// Loud failure for a plan that asks a site for an action the site
    /// cannot perform — a broken plan must be fixed, not silently skipped.
    pub fn unsupported(&self, site: &str) -> ! {
        panic!(
            "fault plan error: site `{site}` does not support action `{}`",
            self.action
        )
    }
}

/// One fired fault, as reported by [`fired`] / [`disarm`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FiredFault {
    /// The site that fired.
    pub site: String,
    /// The action it performed.
    pub action: Action,
    /// 0-based visit index at which it fired.
    pub occurrence: u64,
}

/// Callback invoked (outside the injection lock) for every fired fault —
/// the bench binaries install one that emits an `obs` event. A plain `fn`
/// pointer so this crate stays dependency-free.
pub type Observer = fn(site: &str, action: &'static str, occurrence: u64);

/// Arming switch. Relaxed is enough: the flag only transitions inside
/// [`arm`]/[`disarm`], which fully synchronise via `STATE`.
static ARMED: AtomicBool = AtomicBool::new(false);
static STATE: Mutex<Option<PlanState>> = Mutex::new(None);

struct PlanState {
    plan: FaultPlan,
    observer: Option<Observer>,
    counters: HashMap<String, u64>,
    fired: Vec<FiredFault>,
}

thread_local! {
    /// Ambient context index (dataset workers: the instance index).
    static CTX: Cell<Option<u64>> = const { Cell::new(None) };
}

/// Is a fault plan currently armed? A single relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Guard that attaches an ambient context index to this thread's visits
/// while it is alive. Nests: dropping restores the previous context.
pub struct ContextGuard {
    prev: Option<u64>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        CTX.with(|c| c.set(self.prev));
    }
}

/// Attach `index` as this thread's ambient context (see [`Select::Context`]).
pub fn context(index: u64) -> ContextGuard {
    let prev = CTX.with(|c| c.replace(Some(index)));
    ContextGuard { prev }
}

/// Visit the named fault site. Returns `None` (after one relaxed atomic
/// load) when no plan is armed or no rule fires for this visit; returns the
/// [`Fault`] to perform otherwise. Every armed visit advances the site's
/// occurrence counter, fired or not.
pub fn inject(site: &str) -> Option<Fault> {
    if !enabled() {
        return None;
    }
    let ctx = CTX.with(Cell::get);
    let mut notify: Option<(Observer, Fault)> = None;
    let fault = {
        let mut state = STATE.lock().unwrap_or_else(|e| e.into_inner());
        let state = state.as_mut()?;
        let counter = state.counters.entry(site.to_owned()).or_insert(0);
        let occurrence = *counter;
        *counter += 1;
        let seed = state.plan.seed;
        let rule = state.plan.rules.iter().find(|rule| {
            pattern_matches(&rule.pattern, site)
                && match rule.select {
                    Select::Occurrence(n) => occurrence == n,
                    Select::From(n) => occurrence >= n,
                    Select::Context(n) => ctx == Some(n),
                    Select::Probability(p) => bernoulli(seed, site, occurrence) < p,
                }
        })?;
        let fault = Fault {
            action: rule.action,
            occurrence,
        };
        state.fired.push(FiredFault {
            site: site.to_owned(),
            action: fault.action,
            occurrence,
        });
        if let Some(observer) = state.observer {
            notify = Some((observer, fault.clone()));
        }
        Some(fault)
    };
    if let Some((observer, fault)) = notify {
        observer(site, fault.action.tag(), fault.occurrence);
    }
    fault
}

/// Replayable Bernoulli draw in `[0, 1)` for (seed, site, occurrence).
fn bernoulli(seed: u64, site: &str, occurrence: u64) -> f64 {
    let mut h = fnv1a(FNV_OFFSET, &seed.to_le_bytes());
    h = fnv1a(h, site.as_bytes());
    h = fnv1a(h, &occurrence.to_le_bytes());
    // Top 53 bits → uniform double in [0, 1).
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Arms `plan` process-wide, resetting occurrence counters and the fired
/// log. `observer` (if any) is invoked for every fired fault.
pub fn arm(plan: FaultPlan, observer: Option<Observer>) {
    let mut state = STATE.lock().unwrap_or_else(|e| e.into_inner());
    *state = Some(PlanState {
        plan,
        observer,
        counters: HashMap::new(),
        fired: Vec::new(),
    });
    ARMED.store(true, Ordering::Relaxed);
}

/// Parses `spec` (see the module docs) and [`arm`]s it.
///
/// # Errors
///
/// Returns the parse error message; nothing is armed on error.
pub fn arm_str(spec: &str, observer: Option<Observer>) -> Result<(), String> {
    let plan = FaultPlan::parse(spec)?;
    arm(plan, observer);
    Ok(())
}

/// Disarms the current plan (no-op when none is armed) and returns every
/// fault that fired while it was armed, in firing order.
pub fn disarm() -> Vec<FiredFault> {
    let mut state = STATE.lock().unwrap_or_else(|e| e.into_inner());
    ARMED.store(false, Ordering::Relaxed);
    state.take().map(|s| s.fired).unwrap_or_default()
}

/// Snapshot of the faults fired so far under the armed plan (empty when
/// none is armed).
pub fn fired() -> Vec<FiredFault> {
    let state = STATE.lock().unwrap_or_else(|e| e.into_inner());
    state.as_ref().map(|s| s.fired.clone()).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The plan is process-global; serialise tests that arm it.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    struct Disarm;
    impl Drop for Disarm {
        fn drop(&mut self) {
            disarm();
        }
    }

    #[test]
    fn disarmed_inject_is_a_noop() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        disarm();
        assert!(!enabled());
        assert!(inject("any.site").is_none());
        assert!(fired().is_empty());
    }

    #[test]
    fn parse_full_grammar() {
        let plan = FaultPlan::parse("seed=9; sat.solve:panic@o2 ;checkpoint.*:torn;x:die@c3")
            .expect("valid spec");
        assert_eq!(plan.seed, 9);
        assert_eq!(plan.rules.len(), 3);
        assert_eq!(plan.rules[0].pattern, "sat.solve");
        assert_eq!(plan.rules[0].action, Action::Panic);
        assert_eq!(plan.rules[0].select, Select::Occurrence(2));
        assert_eq!(plan.rules[1].select, Select::Occurrence(0), "default is o0");
        assert_eq!(plan.rules[2].select, Select::Context(3));
        let plan = FaultPlan::parse("a:io@o5+;b:nan@p0.5").unwrap();
        assert_eq!(plan.rules[0].select, Select::From(5));
        assert_eq!(plan.rules[1].select, Select::Probability(0.5));
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "nocolon",
            "a:explode",
            "a:panic@z3",
            "a:panic@p1.5",
            ":panic",
            "seed=abc",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "`{bad}` must be rejected");
        }
    }

    #[test]
    fn glob_patterns_match_substrings() {
        assert!(pattern_matches("sat.solve", "sat.solve"));
        assert!(!pattern_matches("sat.solve", "sat.solver"));
        assert!(pattern_matches("checkpoint.*", "checkpoint.append"));
        assert!(pattern_matches("*", "anything"));
        assert!(pattern_matches("*.write", "cache.write"));
        assert!(pattern_matches("a*c*e", "abcde"));
        assert!(!pattern_matches("a*z", "abcde"));
    }

    #[test]
    fn occurrence_selectors_fire_deterministically() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let _cleanup = Disarm;
        arm_str("s:io@o1;t:nan@o1+", None).unwrap();
        assert!(enabled());
        assert!(inject("s").is_none());
        let f = inject("s").expect("second visit fires");
        assert_eq!((f.action, f.occurrence), (Action::Io, 1));
        assert!(inject("s").is_none(), "oN fires exactly once");
        assert!(inject("t").is_none());
        assert!(inject("t").is_some());
        assert!(inject("t").is_some(), "oN+ keeps firing");
        assert_eq!(
            disarm()
                .iter()
                .map(|f| (f.site.as_str(), f.occurrence))
                .collect::<Vec<_>>(),
            vec![("s", 1), ("t", 1), ("t", 2)]
        );
        assert!(!enabled());
    }

    #[test]
    fn context_selector_targets_one_instance() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let _cleanup = Disarm;
        arm_str("w:die@c2", None).unwrap();
        assert!(inject("w").is_none(), "no ambient context");
        {
            let _ctx = context(1);
            assert!(inject("w").is_none());
            {
                let _inner = context(2);
                assert!(inject("w").is_some());
            }
            assert!(inject("w").is_none(), "outer context restored");
        }
    }

    #[test]
    fn probability_selector_is_replayable_and_roughly_calibrated() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let _cleanup = Disarm;
        let run = || {
            arm_str("p.site:panic@p0.3;seed=7", None).unwrap();
            let fires: Vec<bool> = (0..200).map(|_| inject("p.site").is_some()).collect();
            disarm();
            fires
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed, same decisions");
        let count = a.iter().filter(|&&f| f).count();
        assert!((30..90).contains(&count), "p0.3 of 200 fired {count} times");
        arm_str("p.site:panic@p0.3;seed=8", None).unwrap();
        let c: Vec<bool> = (0..200).map(|_| inject("p.site").is_some()).collect();
        assert_ne!(a, c, "different seed, different decisions");
    }

    #[test]
    fn first_matching_rule_wins() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let _cleanup = Disarm;
        arm_str("x.y:io@o0+;x.*:panic@o0+", None).unwrap();
        assert_eq!(inject("x.y").unwrap().action, Action::Io);
        assert_eq!(inject("x.z").unwrap().action, Action::Panic);
    }

    #[test]
    fn observer_sees_every_fired_fault() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let _cleanup = Disarm;
        static SEEN: Mutex<Vec<(String, &'static str, u64)>> = Mutex::new(Vec::new());
        fn observe(site: &str, action: &'static str, occurrence: u64) {
            SEEN.lock().unwrap().push((site.into(), action, occurrence));
        }
        SEEN.lock().unwrap().clear();
        arm_str("ob:torn@o1", Some(observe)).unwrap();
        inject("ob");
        inject("ob");
        assert_eq!(*SEEN.lock().unwrap(), vec![("ob".to_owned(), "torn", 1)]);
    }

    #[test]
    fn action_tags_round_trip() {
        for action in [
            Action::Panic,
            Action::Unknown,
            Action::Torn,
            Action::Short,
            Action::Io,
            Action::Die,
            Action::Nan,
        ] {
            assert_eq!(Action::from_tag(action.tag()), Some(action));
        }
        assert_eq!(Action::from_tag("nonsense"), None);
    }

    #[test]
    fn fnv_detects_single_byte_substitutions() {
        let a = fnv1a(FNV_OFFSET, b"hello world");
        let b = fnv1a(FNV_OFFSET, b"hellp world");
        assert_ne!(a, b);
        assert_eq!(a, fnv1a(FNV_OFFSET, b"hello world"));
    }
}
