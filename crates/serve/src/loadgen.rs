//! Open-loop load generator for the prediction service.
//!
//! *Open-loop* means requests are launched on a fixed schedule (request `k`
//! fires at `t0 + k/rate`) regardless of how fast earlier requests finish.
//! A closed-loop generator slows down with the server and therefore cannot
//! see saturation; an open-loop one keeps offering load past the knee, which
//! is exactly where the shed/deadline behaviour this crate exists for shows
//! up. Latency is measured from the *scheduled* send time, so queueing
//! behind a saturated server counts against the server, not the client.
//!
//! [`run_levels`] sweeps a list of offered rates and produces one
//! [`LevelReport`] per rate; [`reports_to_json`] renders the sweep in the
//! same hand-rolled JSON style as the other `BENCH_*.json` artifacts.

use crate::protocol::{self, ErrorCode, Reply, Request};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The request every load-generated call sends (one workload per sweep).
#[derive(Debug, Clone)]
pub struct Workload {
    /// Registry name of the model to exercise.
    pub model: String,
    /// `.bench` netlist text sent with every request.
    pub bench: String,
    /// Gate mask sent with every request.
    pub mask: Vec<String>,
    /// Client deadline in milliseconds (0 = server default).
    pub deadline_ms: u32,
}

impl Workload {
    fn request(&self) -> Request {
        Request {
            model: self.model.clone(),
            deadline_ms: self.deadline_ms,
            mask: self.mask.clone(),
            bench: self.bench.clone(),
        }
    }
}

/// Sweep configuration.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address (`host:port`).
    pub addr: String,
    /// Offered rates to sweep, in requests/second.
    pub rates: Vec<f64>,
    /// Requests per rate level.
    pub requests: usize,
    /// Client threads firing the schedule.
    pub clients: usize,
    /// Per-connection socket timeout.
    pub timeout: Duration,
    /// Socket timeout for readiness probes ([`wait_ready`]): how long one
    /// ping may take before the probe loop retries. `None` derives it from
    /// [`LoadgenConfig::timeout`] — see [`LoadgenConfig::probe_timeout`].
    pub probe_timeout: Option<Duration>,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: "127.0.0.1:0".to_owned(),
            rates: vec![50.0, 200.0, 1000.0],
            requests: 200,
            clients: 8,
            timeout: Duration::from_secs(5),
            probe_timeout: None,
        }
    }
}

impl LoadgenConfig {
    /// The readiness-probe socket timeout: the explicit setting when given,
    /// otherwise one-tenth of the request timeout, clamped to
    /// [50 ms, timeout]. Probes should give up well before a real request
    /// would — a server that cannot answer a ping in a fraction of the
    /// request budget is not ready — but still scale with slow deployments
    /// instead of a hardcoded 500 ms.
    pub fn probe_timeout(&self) -> Duration {
        self.probe_timeout.unwrap_or_else(|| {
            (self.timeout / 10)
                .max(Duration::from_millis(50))
                .min(self.timeout)
        })
    }
}

/// Outcome histogram and latency tail for one offered-rate level.
#[derive(Debug, Clone)]
pub struct LevelReport {
    /// The rate the schedule offered (requests/second).
    pub offered_rps: f64,
    /// Requests actually sent.
    pub sent: usize,
    /// Requests answered with a prediction.
    pub ok: usize,
    /// Requests shed with [`ErrorCode::Overloaded`].
    pub overloaded: usize,
    /// Requests refused with [`ErrorCode::DeadlineExceeded`].
    pub deadline_exceeded: usize,
    /// Every other failure (typed errors, transport errors, timeouts).
    pub other_error: usize,
    /// Successful predictions per second of wall time.
    pub achieved_ok_rps: f64,
    /// Median latency of successful requests, milliseconds (scheduled send
    /// → reply decoded).
    pub p50_ms: f64,
    /// 99th-percentile latency of successful requests, milliseconds.
    pub p99_ms: f64,
    /// Wall time of the whole level, seconds.
    pub wall_s: f64,
}

#[derive(Default)]
struct LevelTally {
    ok: usize,
    overloaded: usize,
    deadline_exceeded: usize,
    other_error: usize,
    latencies_ns: Vec<u64>,
}

/// Polls the server with pings until it answers or `timeout` elapses. Each
/// probe's socket timeout comes from [`LoadgenConfig::probe_timeout`].
///
/// # Errors
///
/// Returns the last connect/ping error once the timeout expires.
pub fn wait_ready(config: &LoadgenConfig, timeout: Duration) -> std::io::Result<()> {
    let addr = config.addr.as_str();
    let probe = config.probe_timeout();
    let start = Instant::now();
    let mut last: std::io::Error =
        std::io::Error::new(std::io::ErrorKind::TimedOut, "server never answered a ping");
    while start.elapsed() < timeout {
        match TcpStream::connect(addr) {
            Ok(mut stream) => {
                let _ = stream.set_read_timeout(Some(probe));
                let _ = stream.set_write_timeout(Some(probe));
                match protocol::ping(&mut stream) {
                    Ok(()) => return Ok(()),
                    Err(e) => last = e,
                }
            }
            Err(e) => last = e,
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    Err(last)
}

/// Runs one open-loop level: `config.requests` requests offered at
/// `rate` requests/second from `config.clients` threads, one connection per
/// request.
fn run_level(config: &LoadgenConfig, workload: &Workload, rate: f64) -> LevelReport {
    let next = AtomicUsize::new(0);
    let tally = Mutex::new(LevelTally::default());
    let t0 = Instant::now();
    let interval_ns = if rate > 0.0 { 1e9 / rate } else { 0.0 };

    std::thread::scope(|scope| {
        for _ in 0..config.clients.max(1) {
            scope.spawn(|| loop {
                let k = next.fetch_add(1, Ordering::Relaxed);
                if k >= config.requests {
                    return;
                }
                let scheduled = Duration::from_nanos((interval_ns * k as f64) as u64);
                // Open loop: hold the schedule even if the server lags.
                loop {
                    let elapsed = t0.elapsed();
                    if elapsed >= scheduled {
                        break;
                    }
                    std::thread::sleep((scheduled - elapsed).min(Duration::from_millis(5)));
                }
                let outcome = fire_once(config, workload);
                let latency_ns = t0.elapsed().saturating_sub(scheduled).as_nanos() as u64;
                let mut tally = tally.lock().unwrap_or_else(|e| e.into_inner());
                match outcome {
                    Ok(Reply::Prediction { .. }) => {
                        tally.ok += 1;
                        tally.latencies_ns.push(latency_ns);
                    }
                    Ok(Reply::Error { code, .. }) => match code {
                        ErrorCode::Overloaded => tally.overloaded += 1,
                        ErrorCode::DeadlineExceeded => tally.deadline_exceeded += 1,
                        _ => tally.other_error += 1,
                    },
                    Ok(Reply::Pong) | Err(_) => tally.other_error += 1,
                }
            });
        }
    });

    let wall_s = t0.elapsed().as_secs_f64();
    let mut tally = tally.into_inner().unwrap_or_else(|e| e.into_inner());
    tally.latencies_ns.sort_unstable();
    let pct =
        |p: f64| -> f64 { nearest_rank(&tally.latencies_ns, p).map_or(0.0, |ns| ns as f64 / 1e6) };
    LevelReport {
        offered_rps: rate,
        sent: config.requests,
        ok: tally.ok,
        overloaded: tally.overloaded,
        deadline_exceeded: tally.deadline_exceeded,
        other_error: tally.other_error,
        achieved_ok_rps: if wall_s > 0.0 {
            tally.ok as f64 / wall_s
        } else {
            0.0
        },
        p50_ms: pct(0.50),
        p99_ms: pct(0.99),
        wall_s,
    }
}

/// Nearest-rank percentile over an ascending-sorted sample: the smallest
/// value with at least `p·n` of the observations at or below it, i.e. the
/// sample at 1-based rank `⌈p·n⌉`. With one sample every percentile is that
/// sample; with two, the p50 is the *first* (half the mass sits at or below
/// it). An earlier revision used `round((n-1)·p)`, which reported the 51st
/// of 100 samples as the median.
fn nearest_rank(sorted: &[u64], p: f64) -> Option<u64> {
    if sorted.is_empty() {
        return None;
    }
    let rank = (p * sorted.len() as f64).ceil().max(1.0) as usize;
    Some(sorted[rank.min(sorted.len()) - 1])
}

fn fire_once(config: &LoadgenConfig, workload: &Workload) -> std::io::Result<Reply> {
    let mut stream = TcpStream::connect(&config.addr)?;
    stream.set_read_timeout(Some(config.timeout))?;
    stream.set_write_timeout(Some(config.timeout))?;
    protocol::call(&mut stream, &workload.request())
}

/// Sweeps every rate in `config.rates` and returns one report per level.
pub fn run_levels(config: &LoadgenConfig, workload: &Workload) -> Vec<LevelReport> {
    config
        .rates
        .iter()
        .map(|&rate| run_level(config, workload, rate))
        .collect()
}

/// Logical bytes of one request's inference inputs (propagation operator +
/// feature matrix) for the given model architecture — the same number the
/// server records per request in [`ServeStats::peak_request_bytes`]
/// (`crate::ServeStats`). A pure function of the workload, so the client
/// can stamp it into `BENCH_serve.json` without a stats side channel.
/// `None` when the netlist does not parse or the mask names a missing gate.
pub fn workload_request_bytes(
    workload: &Workload,
    kind: icnet::ModelKind,
    features: icnet::FeatureSet,
) -> Option<u64> {
    let circuit = netlist::Circuit::from_bench(workload.model.clone(), &workload.bench).ok()?;
    let selected: Option<Vec<_>> = workload.mask.iter().map(|n| circuit.find(n)).collect();
    let graph = icnet::CircuitGraph::from_circuit(&circuit);
    let op = kind.operator(&graph);
    let x = icnet::encode_features(&circuit, &selected?, features);
    Some(op.logical_bytes() + x.logical_bytes())
}

/// Renders a sweep as the `BENCH_serve.json` artifact (hand-rolled JSON,
/// matching the other `BENCH_*.json` files). `peak_request_bytes` is the
/// per-request logical-byte figure (see [`workload_request_bytes`]); `0`
/// means unknown and is still recorded for schema stability.
pub fn reports_to_json(
    workload_model: &str,
    reports: &[LevelReport],
    peak_request_bytes: u64,
) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"model\": \"{workload_model}\",\n"));
    out.push_str(&format!(
        "  \"peak_request_bytes\": {peak_request_bytes},\n"
    ));
    out.push_str("  \"levels\": [\n");
    for (i, r) in reports.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"offered_rps\": {:.1}, \"sent\": {}, \"ok\": {}, \
             \"overloaded\": {}, \"deadline_exceeded\": {}, \"other_error\": {}, \
             \"achieved_ok_rps\": {:.2}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \
             \"wall_s\": {:.3}}}{}\n",
            r.offered_rps,
            r.sent,
            r.ok,
            r.overloaded,
            r.deadline_exceeded,
            r.other_error,
            r.achieved_ok_rps,
            r.p50_ms,
            r.p99_ms,
            r.wall_s,
            if i + 1 < reports.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_render_as_json() {
        let reports = vec![
            LevelReport {
                offered_rps: 50.0,
                sent: 100,
                ok: 100,
                overloaded: 0,
                deadline_exceeded: 0,
                other_error: 0,
                achieved_ok_rps: 49.8,
                p50_ms: 1.2,
                p99_ms: 3.4,
                wall_s: 2.0,
            },
            LevelReport {
                offered_rps: 2000.0,
                sent: 100,
                ok: 40,
                overloaded: 55,
                deadline_exceeded: 5,
                other_error: 0,
                achieved_ok_rps: 400.0,
                p50_ms: 2.0,
                p99_ms: 20.0,
                wall_s: 0.1,
            },
        ];
        let json = reports_to_json("demo", &reports, 4096);
        assert!(json.contains("\"model\": \"demo\""));
        assert!(json.contains("\"peak_request_bytes\": 4096"));
        assert!(json.contains("\"overloaded\": 55"));
        assert!(json.ends_with("}\n"));
        // Exactly one separator between the two level objects.
        assert_eq!(json.matches("},").count(), 1);
    }

    #[test]
    fn nearest_rank_of_one_sample_is_that_sample() {
        let lat = vec![7u64];
        assert_eq!(nearest_rank(&lat, 0.50), Some(7));
        assert_eq!(nearest_rank(&lat, 0.99), Some(7));
        assert_eq!(nearest_rank(&lat, 1.0), Some(7));
    }

    #[test]
    fn nearest_rank_of_two_samples_splits_at_the_median() {
        // p50 of two samples is the first: 50% of the mass is at or below
        // it. The old `round((n-1)·p)` arithmetic reported the second.
        let lat = vec![10u64, 20];
        assert_eq!(nearest_rank(&lat, 0.50), Some(10));
        assert_eq!(nearest_rank(&lat, 0.99), Some(20));
    }

    #[test]
    fn nearest_rank_of_a_hundred_samples_is_exact() {
        let lat: Vec<u64> = (1..=100).collect();
        assert_eq!(
            nearest_rank(&lat, 0.50),
            Some(50),
            "median of 100 is the 50th"
        );
        assert_eq!(nearest_rank(&lat, 0.99), Some(99));
        assert_eq!(nearest_rank(&lat, 0.01), Some(1));
        assert_eq!(nearest_rank(&lat, 1.0), Some(100));
    }

    #[test]
    fn nearest_rank_of_nothing_is_none() {
        assert_eq!(nearest_rank(&[], 0.5), None);
    }

    #[test]
    fn probe_timeout_derives_from_the_request_timeout() {
        let mut config = LoadgenConfig {
            timeout: Duration::from_secs(5),
            probe_timeout: None,
            ..Default::default()
        };
        assert_eq!(config.probe_timeout(), Duration::from_millis(500));

        // Clamped below: a tiny request timeout still probes for ≥ 50 ms.
        config.timeout = Duration::from_millis(100);
        assert_eq!(config.probe_timeout(), Duration::from_millis(50));

        // Never beyond the request timeout itself.
        config.timeout = Duration::from_millis(30);
        assert_eq!(config.probe_timeout(), Duration::from_millis(30));

        // An explicit setting wins outright.
        config.probe_timeout = Some(Duration::from_millis(123));
        assert_eq!(config.probe_timeout(), Duration::from_millis(123));
    }
}
