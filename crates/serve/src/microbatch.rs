//! Deadline-aware micro-batching of GNN inference.
//!
//! Workers still do the per-request work that is cheap and independent —
//! frame decode, registry lookup, netlist parse, feature encoding — and then
//! hand an [`InferJob`] (operator + features + deadline + reply channel) to
//! one batcher thread. The batcher collects concurrent jobs inside a bounded
//! window, packs same-model jobs into one [`BatchedGraph`], and answers the
//! whole group with a single batched forward pass — so under concurrency the
//! expensive stage runs once per group instead of once per request.
//!
//! The window is deadline-aware twice over: collection never waits past the
//! earliest deadline of a job already in hand, and a job whose deadline
//! passed while it waited is answered `Expired` without inference. A request
//! arriving on an idle server (the common light-load case) waits at most
//! `window` before running alone; `window = 0` degenerates to sequential
//! inference through the same code path.

use icnet::{BatchedGraph, GraphModel};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tensor::{CsrMatrix, Matrix};

/// What the batcher tells the waiting worker about one job.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum InferOutcome {
    /// The model's prediction.
    Value(f64),
    /// The job's deadline passed before inference started.
    Expired,
    /// The model produced a non-finite value for this job.
    NonFinite(String),
    /// The batched forward pass panicked; nobody in the group got a value.
    Panicked,
}

/// One inference handed from a worker to the batcher.
pub(crate) struct InferJob {
    /// Registry name — the grouping key (same name ⇒ same model ⇒ same
    /// feature width, so the group stacks cleanly).
    pub model_name: String,
    /// The model to run (shared with the registry).
    pub model: Arc<GraphModel>,
    /// This request's graph operator.
    pub op: Arc<CsrMatrix>,
    /// This request's node features.
    pub x: Matrix,
    /// Absolute deadline (admission time + budget).
    pub deadline: Instant,
    /// Where the worker blocks for the outcome.
    pub reply: Sender<InferOutcome>,
}

/// Lifetime counters of the batcher thread.
#[derive(Debug, Default)]
pub(crate) struct BatchStats {
    /// Batched forward passes executed (groups, including singletons).
    pub batches: AtomicU64,
    /// Jobs answered through a group of size ≥ 2.
    pub batched_jobs: AtomicU64,
}

/// The batcher thread: collect a window of jobs, flush, repeat until every
/// sender is gone.
pub(crate) fn run_batcher(
    receiver: Receiver<InferJob>,
    window: Duration,
    max_batch: usize,
    stats: Arc<BatchStats>,
) {
    while let Some(jobs) = collect_window(&receiver, window, max_batch) {
        flush(jobs, &stats);
    }
}

/// Blocks for the next job, then gathers whatever else arrives inside the
/// batching window. Returns `None` once the channel is closed and drained.
fn collect_window(
    receiver: &Receiver<InferJob>,
    window: Duration,
    max_batch: usize,
) -> Option<Vec<InferJob>> {
    let first = receiver.recv().ok()?;
    // Never hold a job past its own deadline waiting for company.
    let mut window_end = (Instant::now() + window).min(first.deadline);
    let mut jobs = vec![first];
    while jobs.len() < max_batch.max(1) {
        let now = Instant::now();
        if now >= window_end {
            break;
        }
        match receiver.recv_timeout(window_end - now) {
            Ok(job) => {
                window_end = window_end.min(job.deadline);
                jobs.push(job);
            }
            Err(RecvTimeoutError::Timeout) => break,
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    Some(jobs)
}

/// Groups the collected jobs by model (preserving arrival order within each
/// group) and answers every one.
fn flush(jobs: Vec<InferJob>, stats: &BatchStats) {
    let mut groups: Vec<(String, Vec<InferJob>)> = Vec::new();
    for job in jobs {
        match groups.iter_mut().find(|(name, _)| *name == job.model_name) {
            Some((_, group)) => group.push(job),
            None => groups.push((job.model_name.clone(), vec![job])),
        }
    }
    for (_, group) in groups {
        run_group(group, stats);
    }
}

/// One batched forward pass for a same-model group of jobs.
fn run_group(group: Vec<InferJob>, stats: &BatchStats) {
    // Jobs that aged out while waiting are answered without inference and
    // never enter the forward pass.
    let now = Instant::now();
    let (live, dead): (Vec<InferJob>, Vec<InferJob>) =
        group.into_iter().partition(|job| job.deadline > now);
    for job in dead {
        let _ = job.reply.send(InferOutcome::Expired);
    }
    if live.is_empty() {
        return;
    }

    stats.batches.fetch_add(1, Ordering::Relaxed);
    if live.len() >= 2 {
        stats
            .batched_jobs
            .fetch_add(live.len() as u64, Ordering::Relaxed);
    }

    let model = Arc::clone(&live[0].model);
    let batch = if live.len() == 1 {
        BatchedGraph::single(Arc::clone(&live[0].op))
    } else {
        let ops: Vec<&CsrMatrix> = live.iter().map(|job| job.op.as_ref()).collect();
        BatchedGraph::from_ops(&ops)
    };
    let xs: Vec<&Matrix> = live.iter().map(|job| &job.x).collect();
    // A panic (malformed shapes slipping through, a model bug) must cost
    // this group a typed error, not the batcher thread.
    let values = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        model.predict_batched(&batch, &xs)
    }));
    match values {
        Ok(values) => {
            for (job, value) in live.into_iter().zip(values) {
                let outcome = if value.is_finite() {
                    InferOutcome::Value(value)
                } else {
                    InferOutcome::NonFinite(format!(
                        "model `{}` produced a non-finite prediction",
                        job.model_name
                    ))
                };
                let _ = job.reply.send(outcome);
            }
        }
        Err(_) => {
            for job in live {
                let _ = job.reply.send(InferOutcome::Panicked);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icnet::{Aggregation, CircuitGraph, FeatureSet, GraphModel, ModelKind};

    fn job_parts() -> (Arc<GraphModel>, Arc<CsrMatrix>, Matrix) {
        let circuit = netlist::c17();
        let graph = CircuitGraph::from_circuit(&circuit);
        let op = Arc::new(ModelKind::ICNet.operator(&graph));
        let x = icnet::encode_features(&circuit, &[circuit.find("n10").unwrap()], FeatureSet::All);
        let model = Arc::new(GraphModel::new(
            ModelKind::ICNet,
            Aggregation::Nn,
            7,
            8,
            6,
            42,
        ));
        (model, op, x)
    }

    fn make_job(
        name: &str,
        model: &Arc<GraphModel>,
        op: &Arc<CsrMatrix>,
        x: &Matrix,
        deadline: Instant,
    ) -> (InferJob, Receiver<InferOutcome>) {
        let (tx, rx) = std::sync::mpsc::channel();
        (
            InferJob {
                model_name: name.to_owned(),
                model: Arc::clone(model),
                op: Arc::clone(op),
                x: x.clone(),
                deadline,
                reply: tx,
            },
            rx,
        )
    }

    #[test]
    fn grouped_jobs_get_the_same_answers_as_sequential_inference() {
        let (model, op, x) = job_parts();
        let direct = model.predict(&op, &x);
        let deadline = Instant::now() + Duration::from_secs(5);
        let stats = BatchStats::default();
        let (a, rx_a) = make_job("m", &model, &op, &x, deadline);
        let (b, rx_b) = make_job("m", &model, &op, &x, deadline);
        let (c, rx_c) = make_job("m", &model, &op, &x, deadline);
        flush(vec![a, b, c], &stats);
        for rx in [rx_a, rx_b, rx_c] {
            assert_eq!(rx.recv().unwrap(), InferOutcome::Value(direct));
        }
        assert_eq!(stats.batches.load(Ordering::Relaxed), 1);
        assert_eq!(stats.batched_jobs.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn different_models_flush_as_separate_groups() {
        let (model, op, x) = job_parts();
        let other = Arc::new(GraphModel::new(
            ModelKind::ICNet,
            Aggregation::Sum,
            7,
            8,
            6,
            7,
        ));
        let deadline = Instant::now() + Duration::from_secs(5);
        let stats = BatchStats::default();
        let (a, rx_a) = make_job("alpha", &model, &op, &x, deadline);
        let (b, rx_b) = make_job("beta", &other, &op, &x, deadline);
        flush(vec![a, b], &stats);
        assert_eq!(
            rx_a.recv().unwrap(),
            InferOutcome::Value(model.predict(&op, &x))
        );
        assert_eq!(
            rx_b.recv().unwrap(),
            InferOutcome::Value(other.predict(&op, &x))
        );
        assert_eq!(stats.batches.load(Ordering::Relaxed), 2);
        assert_eq!(
            stats.batched_jobs.load(Ordering::Relaxed),
            0,
            "singleton groups are not counted as batched"
        );
    }

    #[test]
    fn expired_jobs_are_answered_without_inference() {
        let (model, op, x) = job_parts();
        let stats = BatchStats::default();
        let past = Instant::now() - Duration::from_millis(1);
        let future = Instant::now() + Duration::from_secs(5);
        let (stale, rx_stale) = make_job("m", &model, &op, &x, past);
        let (fresh, rx_fresh) = make_job("m", &model, &op, &x, future);
        flush(vec![stale, fresh], &stats);
        assert_eq!(rx_stale.recv().unwrap(), InferOutcome::Expired);
        assert!(matches!(rx_fresh.recv().unwrap(), InferOutcome::Value(_)));
    }

    #[test]
    fn a_poisoned_group_gets_typed_panics_not_a_dead_thread() {
        let (model, op, x) = job_parts();
        let stats = BatchStats::default();
        let deadline = Instant::now() + Duration::from_secs(5);
        let bad = Matrix::zeros(3, 7); // wrong node count for the c17 op
        let (a, rx_a) = make_job("m", &model, &op, &bad, deadline);
        let (b, rx_b) = make_job("m", &model, &op, &x, deadline);
        flush(vec![a, b], &stats);
        assert_eq!(rx_a.recv().unwrap(), InferOutcome::Panicked);
        assert_eq!(rx_b.recv().unwrap(), InferOutcome::Panicked);
    }

    #[test]
    fn collect_window_respects_max_batch_and_disconnect() {
        let (model, op, x) = job_parts();
        let deadline = Instant::now() + Duration::from_secs(5);
        let (tx, rx) = std::sync::mpsc::channel::<InferJob>();
        let mut keep = Vec::new();
        for _ in 0..3 {
            let (job, out) = make_job("m", &model, &op, &x, deadline);
            tx.send(job).unwrap();
            keep.push(out);
        }
        let batch = collect_window(&rx, Duration::from_millis(50), 2).expect("jobs queued");
        assert_eq!(batch.len(), 2, "window caps at max_batch");
        drop(tx);
        let rest = collect_window(&rx, Duration::from_millis(50), 2).expect("one job left");
        assert_eq!(rest.len(), 1);
        assert!(
            collect_window(&rx, Duration::from_millis(1), 2).is_none(),
            "closed and drained"
        );
    }
}
