//! The checksummed model registry: every persisted [`GraphModel`] the
//! server is willing to run, loaded once at startup.
//!
//! Model files are the `icnet` text format (now carrying a checksum footer,
//! see `icnet::persist`), one per file, named `<model-name>.model`. Loading
//! is deliberately strict: a truncated, corrupt, or dimensionally
//! inconsistent file refuses the whole startup with a typed error naming
//! the file — a prediction service silently running half its fleet is worse
//! than one that fails to boot loudly.
//!
//! The `serve.model.load` fault site makes both failure axes testable:
//! `io` fails the read outright, `torn` feeds the parser a half-written
//! file (which the checksum footer rejects).

use icnet::{FeatureSet, GraphModel};
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// File extension of registry entries.
pub const MODEL_EXTENSION: &str = "model";

/// One loaded model plus everything precomputed about it.
#[derive(Debug, Clone)]
pub struct ModelEntry {
    /// Registry name (the file stem).
    pub name: String,
    /// The parsed model, shared across worker threads.
    pub model: Arc<GraphModel>,
    /// Feature encoder matching the model's input width.
    pub features: FeatureSet,
}

/// Why the registry refused to load.
#[derive(Debug)]
pub enum RegistryError {
    /// Reading the file (or listing the directory) failed.
    Io {
        /// Offending path.
        path: PathBuf,
        /// OS-level detail.
        message: String,
    },
    /// The file's contents failed checksum or structural validation.
    Corrupt {
        /// Offending path.
        path: PathBuf,
        /// Parser diagnosis (line-numbered).
        message: String,
    },
    /// The model parsed but its feature width matches no known encoder.
    BadFeatureWidth {
        /// Offending path.
        path: PathBuf,
        /// The unsupported width.
        width: usize,
    },
    /// The directory holds no `.model` files at all.
    Empty {
        /// The searched directory.
        dir: PathBuf,
    },
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::Io { path, message } => {
                write!(f, "model registry: reading `{}`: {message}", path.display())
            }
            RegistryError::Corrupt { path, message } => {
                write!(
                    f,
                    "model registry: `{}` is corrupt or truncated: {message}",
                    path.display()
                )
            }
            RegistryError::BadFeatureWidth { path, width } => write!(
                f,
                "model registry: `{}` wants {width} input features; no encoder \
                 produces that width (expected {} or {})",
                path.display(),
                icnet::NUM_FEATURES_LOCATION,
                icnet::NUM_FEATURES_ALL,
            ),
            RegistryError::Empty { dir } => write!(
                f,
                "model registry: no `*.{MODEL_EXTENSION}` files in `{}`",
                dir.display()
            ),
        }
    }
}

impl std::error::Error for RegistryError {}

/// All models the server is willing to run, keyed by name.
#[derive(Debug, Default, Clone)]
pub struct ModelRegistry {
    entries: BTreeMap<String, ModelEntry>,
}

/// Maps a model's input width to its feature encoder.
fn feature_set_for(width: usize) -> Option<FeatureSet> {
    match width {
        icnet::NUM_FEATURES_LOCATION => Some(FeatureSet::Location),
        icnet::NUM_FEATURES_ALL => Some(FeatureSet::All),
        _ => None,
    }
}

impl ModelRegistry {
    /// Builds a registry from in-memory models (tests, embedded servers).
    ///
    /// # Errors
    ///
    /// [`RegistryError::BadFeatureWidth`] when a model's input width has no
    /// matching encoder (the path names the offending model).
    pub fn from_models(
        models: impl IntoIterator<Item = (String, GraphModel)>,
    ) -> Result<ModelRegistry, RegistryError> {
        let mut registry = ModelRegistry::default();
        for (name, model) in models {
            let features = feature_set_for(model.num_features()).ok_or_else(|| {
                RegistryError::BadFeatureWidth {
                    path: PathBuf::from(&name),
                    width: model.num_features(),
                }
            })?;
            registry.entries.insert(
                name.clone(),
                ModelEntry {
                    name,
                    model: Arc::new(model),
                    features,
                },
            );
        }
        Ok(registry)
    }

    /// Loads every `*.model` file under `dir`, in name order.
    ///
    /// # Errors
    ///
    /// Fails loudly on the first unreadable ([`RegistryError::Io`]),
    /// corrupt/truncated ([`RegistryError::Corrupt`]), or
    /// dimensionally unusable ([`RegistryError::BadFeatureWidth`]) file,
    /// and on a directory with no models at all ([`RegistryError::Empty`]).
    pub fn load_dir(dir: impl AsRef<Path>) -> Result<ModelRegistry, RegistryError> {
        let dir = dir.as_ref();
        let io_err = |path: &Path, e: std::io::Error| RegistryError::Io {
            path: path.to_owned(),
            message: e.to_string(),
        };
        let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
            .map_err(|e| io_err(dir, e))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().and_then(|e| e.to_str()) == Some(MODEL_EXTENSION))
            .collect();
        paths.sort();
        if paths.is_empty() {
            return Err(RegistryError::Empty {
                dir: dir.to_owned(),
            });
        }

        let mut models = Vec::new();
        for path in paths {
            let mut text = match faults::inject("serve.model.load") {
                Some(fault) => match fault.action {
                    faults::Action::Io => {
                        return Err(RegistryError::Io {
                            path,
                            message: format!(
                                "injected fault: serve.model.load io (occurrence {})",
                                fault.occurrence
                            ),
                        });
                    }
                    // A torn load is a half-written file reaching the
                    // parser: the checksum footer must catch it.
                    faults::Action::Torn => {
                        let full = std::fs::read_to_string(&path).map_err(|e| io_err(&path, e))?;
                        let mut cut = full.len() / 2;
                        while !full.is_char_boundary(cut) {
                            cut -= 1;
                        }
                        full[..cut].to_owned()
                    }
                    _ => fault.unsupported("serve.model.load"),
                },
                None => std::fs::read_to_string(&path).map_err(|e| io_err(&path, e))?,
            };
            // Normalise CRLF uploads; the format is newline-framed.
            if text.contains('\r') {
                text = text.replace('\r', "");
            }
            let model = GraphModel::from_text(&text).map_err(|e| RegistryError::Corrupt {
                path: path.clone(),
                message: e.to_string(),
            })?;
            let name = path
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("model")
                .to_owned();
            models.push((name, model, path));
        }
        let mut registry = ModelRegistry::default();
        for (name, model, path) in models {
            let features =
                feature_set_for(model.num_features()).ok_or(RegistryError::BadFeatureWidth {
                    path,
                    width: model.num_features(),
                })?;
            registry.entries.insert(
                name.clone(),
                ModelEntry {
                    name,
                    model: Arc::new(model),
                    features,
                },
            );
        }
        Ok(registry)
    }

    /// Looks a model up by name.
    pub fn get(&self, name: &str) -> Option<&ModelEntry> {
        self.entries.get(name)
    }

    /// Registered model names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.entries.keys().map(String::as_str).collect()
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Persists `model` as `<dir>/<name>.model` (the registry layout).
///
/// # Errors
///
/// Returns the OS error message.
pub fn save_model(
    dir: impl AsRef<Path>,
    name: &str,
    model: &GraphModel,
) -> Result<PathBuf, String> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir).map_err(|e| format!("creating `{}`: {e}", dir.display()))?;
    let path = dir.join(format!("{name}.{MODEL_EXTENSION}"));
    std::fs::write(&path, model.to_text())
        .map_err(|e| format!("writing `{}`: {e}", path.display()))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use icnet::{Aggregation, ModelKind};

    fn tiny_model(seed: u64) -> GraphModel {
        GraphModel::new(ModelKind::Gcn, Aggregation::Sum, 7, 4, 4, seed)
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("serve_registry_tests")
            .join(format!("{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn loads_every_model_in_name_order() {
        let dir = tmp_dir("loads");
        save_model(&dir, "beta", &tiny_model(2)).unwrap();
        save_model(&dir, "alpha", &tiny_model(1)).unwrap();
        std::fs::write(dir.join("notes.txt"), "ignored").unwrap();
        let registry = ModelRegistry::load_dir(&dir).unwrap();
        assert_eq!(registry.names(), vec!["alpha", "beta"]);
        assert_eq!(registry.len(), 2);
        assert!(registry.get("alpha").is_some());
        assert!(registry.get("gamma").is_none());
        assert_eq!(registry.get("beta").unwrap().features, FeatureSet::All);
    }

    #[test]
    fn empty_directory_is_a_typed_error() {
        let dir = tmp_dir("empty");
        assert!(matches!(
            ModelRegistry::load_dir(&dir),
            Err(RegistryError::Empty { .. })
        ));
        assert!(matches!(
            ModelRegistry::load_dir(dir.join("missing")),
            Err(RegistryError::Io { .. })
        ));
    }

    #[test]
    fn corrupt_model_file_names_the_path() {
        let dir = tmp_dir("corrupt");
        save_model(&dir, "good", &tiny_model(3)).unwrap();
        let bad = dir.join("bad.model");
        let mut text = tiny_model(4).to_text();
        text.truncate(text.len() / 2);
        std::fs::write(&bad, text).unwrap();
        match ModelRegistry::load_dir(&dir) {
            Err(RegistryError::Corrupt { path, .. }) => assert_eq!(path, bad),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn from_models_rejects_unknown_feature_widths() {
        let odd = GraphModel::new(ModelKind::Gcn, Aggregation::Sum, 3, 4, 4, 5);
        let err = ModelRegistry::from_models([("odd".to_owned(), odd)]).unwrap_err();
        assert!(matches!(
            err,
            RegistryError::BadFeatureWidth { width: 3, .. }
        ));
        assert!(err.to_string().contains("3 input features"), "{err}");
    }
}
