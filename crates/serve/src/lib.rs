//! Prediction-as-a-service for persisted ICNet models.
//!
//! This crate turns the trained [`icnet::GraphModel`] regressors into a
//! long-lived network service (ROADMAP item 3): a checksummed registry of
//! persisted models, a length-prefixed TCP protocol carrying `.bench`
//! netlists plus key-gate masks, a bounded-queue worker pool with
//! per-request deadlines and load shedding, and an open-loop load
//! generator for measuring predictions/s and tail latency.
//!
//! The design contract is *graceful degradation*: under overload the
//! server sheds with a typed [`protocol::ErrorCode::Overloaded`] reply
//! instead of queueing unboundedly; slow requests fail with
//! `DeadlineExceeded`; malformed input of every kind gets a typed error
//! while the worker survives; and SIGINT drains in-flight requests. Every
//! failure path is reachable deterministically through `faults` plan
//! sites (`serve.accept`, `serve.read`, `serve.write`, `serve.worker`,
//! `serve.model.load`) and observable through `obs` `serve.request`
//! events. See DESIGN.md §8 for the wire format and the full fault
//! recovery matrix.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod loadgen;
mod microbatch;
pub mod protocol;
pub mod registry;
pub mod server;

pub use loadgen::{run_levels, wait_ready, LevelReport, LoadgenConfig, Workload};
pub use protocol::{ErrorCode, FrameType, Reply, Request};
pub use registry::{save_model, ModelEntry, ModelRegistry, RegistryError};
pub use server::{ServeConfig, ServeStats, Server};
