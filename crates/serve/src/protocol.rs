//! The length-prefixed wire protocol of the prediction service.
//!
//! Every message — request or reply — is one **frame**:
//!
//! ```text
//! [0..4)  magic  b"ICN1"
//! [4]     frame type (see [`FrameType`])
//! [5..9)  payload length, u32 little-endian (capped by the server)
//! [9..]   payload
//! ```
//!
//! A `Predict` payload carries the model name, an optional client deadline,
//! the selected-gate mask, and the `.bench` netlist text (see
//! [`Request::encode`]). Replies are either a prediction
//! ([`Reply::Prediction`]) or a typed error ([`Reply::Error`]) whose
//! [`ErrorCode`] is the service's whole robustness contract: a client can
//! always tell *why* it was refused (shed, deadline, malformed input, ...)
//! and the server never answers a bad frame with silence or a hang.
//!
//! All integers are little-endian. Strings are UTF-8. The frame layout is
//! documented normatively in `DESIGN.md` §8.

use std::io::{self, Read, Write};

/// Frame magic: rejects non-protocol peers (HTTP probes, port scans) at the
/// first four bytes instead of misinterpreting their traffic as a length.
pub const MAGIC: [u8; 4] = *b"ICN1";

/// Bytes before the payload: magic, frame type, payload length.
pub const FRAME_HEADER_LEN: usize = 9;

/// Default cap on a frame payload (4 MiB — an order of magnitude above the
/// largest ISCAS-class `.bench` text). Oversized frames are refused without
/// reading the payload, so a hostile length prefix cannot balloon memory.
pub const DEFAULT_MAX_PAYLOAD: u32 = 4 << 20;

/// The message kinds that travel in a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameType {
    /// Client → server: predict the de-obfuscation runtime of one netlist.
    Predict,
    /// Client → server: liveness probe (used by the load generator to wait
    /// for a booting server).
    Ping,
    /// Server → client: successful prediction.
    Prediction,
    /// Server → client: typed refusal.
    Error,
    /// Server → client: answer to [`FrameType::Ping`].
    Pong,
}

impl FrameType {
    /// Wire byte of this frame type.
    pub fn byte(self) -> u8 {
        match self {
            FrameType::Predict => 0x01,
            FrameType::Ping => 0x02,
            FrameType::Prediction => 0x81,
            FrameType::Error => 0x82,
            FrameType::Pong => 0x83,
        }
    }

    /// Parses a wire byte.
    pub fn from_byte(b: u8) -> Option<FrameType> {
        match b {
            0x01 => Some(FrameType::Predict),
            0x02 => Some(FrameType::Ping),
            0x81 => Some(FrameType::Prediction),
            0x82 => Some(FrameType::Error),
            0x83 => Some(FrameType::Pong),
            _ => None,
        }
    }
}

/// Typed refusal codes. Stable on the wire (`code`) and in obs traces
/// (`tag`); new codes may be appended but existing values never change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The bounded admission queue was full; the request was shed without
    /// occupying a worker. Retry later, ideally with backoff.
    Overloaded,
    /// The server-side deadline expired before a prediction was produced
    /// (including time spent queued).
    DeadlineExceeded,
    /// The frame or request payload was malformed (bad magic, unknown frame
    /// type, truncated payload structure).
    BadFrame,
    /// The frame's declared payload length exceeds the server's cap.
    PayloadTooLarge,
    /// The `.bench` netlist text failed to parse; the message carries the
    /// parser's line-numbered diagnosis.
    BadNetlist,
    /// The request names a model that is not in the registry.
    UnknownModel,
    /// The gate mask names a signal absent from the parsed netlist.
    UnknownGate,
    /// The request is structurally valid but unusable (e.g. the model's
    /// feature width has no matching encoder).
    BadRequest,
    /// The server is draining for shutdown and no longer admits work.
    ShuttingDown,
    /// The prediction pipeline failed internally; the worker survived and
    /// the connection was closed.
    Internal,
}

impl ErrorCode {
    /// Stable wire value.
    pub fn code(self) -> u8 {
        match self {
            ErrorCode::Overloaded => 1,
            ErrorCode::DeadlineExceeded => 2,
            ErrorCode::BadFrame => 3,
            ErrorCode::PayloadTooLarge => 4,
            ErrorCode::BadNetlist => 5,
            ErrorCode::UnknownModel => 6,
            ErrorCode::UnknownGate => 7,
            ErrorCode::BadRequest => 8,
            ErrorCode::ShuttingDown => 9,
            ErrorCode::Internal => 10,
        }
    }

    /// Parses a wire value.
    pub fn from_code(code: u8) -> Option<ErrorCode> {
        match code {
            1 => Some(ErrorCode::Overloaded),
            2 => Some(ErrorCode::DeadlineExceeded),
            3 => Some(ErrorCode::BadFrame),
            4 => Some(ErrorCode::PayloadTooLarge),
            5 => Some(ErrorCode::BadNetlist),
            6 => Some(ErrorCode::UnknownModel),
            7 => Some(ErrorCode::UnknownGate),
            8 => Some(ErrorCode::BadRequest),
            9 => Some(ErrorCode::ShuttingDown),
            10 => Some(ErrorCode::Internal),
            _ => None,
        }
    }

    /// Stable lowercase tag used as the `outcome` of `serve.request` obs
    /// events and in load-generator reports.
    pub fn tag(self) -> &'static str {
        match self {
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::DeadlineExceeded => "deadline_exceeded",
            ErrorCode::BadFrame => "bad_frame",
            ErrorCode::PayloadTooLarge => "payload_too_large",
            ErrorCode::BadNetlist => "bad_netlist",
            ErrorCode::UnknownModel => "unknown_model",
            ErrorCode::UnknownGate => "unknown_gate",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::Internal => "internal",
        }
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.tag())
    }
}

/// One prediction request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Registry name of the model to run.
    pub model: String,
    /// Client-requested deadline in milliseconds; 0 defers to the server
    /// default. The server clamps it to its own maximum either way.
    pub deadline_ms: u32,
    /// Names of the selected (obfuscation-candidate) gates — the `1` rows
    /// of the feature mask.
    pub mask: Vec<String>,
    /// The `.bench` netlist text.
    pub bench: String,
}

/// One server reply, decoded.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// The prediction, plus server-side timing for the client's telemetry.
    Prediction {
        /// Predicted (log-)runtime, exactly as the model emitted it.
        value: f64,
        /// Wall time of the inference pipeline (parse → predict).
        infer_ns: u64,
        /// Time the request spent queued before a worker picked it up.
        wait_ns: u64,
    },
    /// A typed refusal.
    Error {
        /// Machine-readable reason.
        code: ErrorCode,
        /// Human-readable detail (parser line numbers etc.).
        message: String,
    },
    /// Liveness answer.
    Pong,
}

/// Why reading a frame failed. Distinguishes the cases the server must
/// treat differently: a clean EOF ends the connection quietly, a mid-frame
/// disconnect or timeout is reported loudly, and protocol violations are
/// answered with a typed error before closing.
#[derive(Debug)]
pub enum FrameReadError {
    /// Peer closed the connection before any byte of a new frame.
    Eof,
    /// Peer disappeared mid-frame.
    Disconnect,
    /// No bytes arrived within the socket timeout.
    TimedOut,
    /// Transport error.
    Io(io::Error),
    /// First four bytes were not [`MAGIC`].
    BadMagic([u8; 4]),
    /// Unknown frame-type byte.
    BadType(u8),
    /// Declared payload length exceeds the cap.
    TooLarge(u32),
}

impl FrameReadError {
    fn from_io(e: io::Error, started: bool) -> FrameReadError {
        match e.kind() {
            io::ErrorKind::UnexpectedEof => {
                if started {
                    FrameReadError::Disconnect
                } else {
                    FrameReadError::Eof
                }
            }
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => FrameReadError::TimedOut,
            _ => FrameReadError::Io(e),
        }
    }
}

/// Reads one frame. `max_payload` bounds the declared length *before* any
/// payload allocation, so a hostile prefix cannot balloon memory.
///
/// # Errors
///
/// See [`FrameReadError`]; no error variant leaves the reader mid-frame in
/// a recoverable position, so callers should close the connection on any
/// of them except deciding how loudly to report it.
pub fn read_frame(
    r: &mut impl Read,
    max_payload: u32,
) -> Result<(FrameType, Vec<u8>), FrameReadError> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    let mut filled = 0usize;
    while filled < header.len() {
        match r.read(&mut header[filled..]) {
            Ok(0) => {
                return Err(if filled == 0 {
                    FrameReadError::Eof
                } else {
                    FrameReadError::Disconnect
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameReadError::from_io(e, filled > 0)),
        }
    }
    if header[..4] != MAGIC {
        return Err(FrameReadError::BadMagic([
            header[0], header[1], header[2], header[3],
        ]));
    }
    let frame_type = FrameType::from_byte(header[4]).ok_or(FrameReadError::BadType(header[4]))?;
    let len = u32::from_le_bytes([header[5], header[6], header[7], header[8]]);
    if len > max_payload {
        return Err(FrameReadError::TooLarge(len));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)
        .map_err(|e| FrameReadError::from_io(e, true))?;
    Ok((frame_type, payload))
}

/// Writes one frame (header + payload) in a single buffered write.
///
/// # Errors
///
/// Propagates the transport error.
pub fn write_frame(w: &mut impl Write, frame_type: FrameType, payload: &[u8]) -> io::Result<()> {
    let mut buf = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    buf.extend_from_slice(&MAGIC);
    buf.push(frame_type.byte());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    w.write_all(&buf)?;
    w.flush()
}

/// Field-level payload decoding error; the server reports it as
/// [`ErrorCode::BadFrame`] with this message.
pub type DecodeError = String;

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], DecodeError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or_else(|| format!("payload truncated reading {what}"))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u16(&mut self, what: &str) -> Result<u16, DecodeError> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self, what: &str) -> Result<u32, DecodeError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &str) -> Result<u64, DecodeError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    fn string(&mut self, len: usize, what: &str) -> Result<String, DecodeError> {
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| format!("{what} is not UTF-8"))
    }
}

impl Request {
    /// Serializes the request payload (the bytes after the frame header).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + self.bench.len());
        out.extend_from_slice(&(self.model.len() as u16).to_le_bytes());
        out.extend_from_slice(self.model.as_bytes());
        out.extend_from_slice(&self.deadline_ms.to_le_bytes());
        out.extend_from_slice(&(self.mask.len() as u32).to_le_bytes());
        for name in &self.mask {
            out.extend_from_slice(&(name.len() as u16).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
        }
        out.extend_from_slice(&(self.bench.len() as u32).to_le_bytes());
        out.extend_from_slice(self.bench.as_bytes());
        out
    }

    /// Decodes a request payload.
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed field; nothing panics on any
    /// byte sequence (the server feeds this bytes straight off a socket).
    pub fn decode(payload: &[u8]) -> Result<Request, DecodeError> {
        let mut c = Cursor {
            buf: payload,
            pos: 0,
        };
        let model_len = c.u16("model name length")? as usize;
        let model = c.string(model_len, "model name")?;
        let deadline_ms = c.u32("deadline")?;
        let mask_count = c.u32("mask count")? as usize;
        // A hostile count cannot pre-allocate: every entry must actually be
        // present in the payload, so the loop below bounds the allocation.
        if mask_count > payload.len() {
            return Err(format!(
                "mask count {mask_count} exceeds payload size {}",
                payload.len()
            ));
        }
        let mut mask = Vec::with_capacity(mask_count.min(1024));
        for i in 0..mask_count {
            let len = c.u16("mask entry length")? as usize;
            mask.push(c.string(len, &format!("mask entry {i}"))?);
        }
        let bench_len = c.u32("netlist length")? as usize;
        let bench = c.string(bench_len, "netlist text")?;
        if c.pos != payload.len() {
            return Err(format!(
                "{} trailing bytes after the netlist",
                payload.len() - c.pos
            ));
        }
        Ok(Request {
            model,
            deadline_ms,
            mask,
            bench,
        })
    }
}

impl Reply {
    /// Serializes the reply into `(frame type, payload)`.
    pub fn encode(&self) -> (FrameType, Vec<u8>) {
        match self {
            Reply::Prediction {
                value,
                infer_ns,
                wait_ns,
            } => {
                let mut out = Vec::with_capacity(24);
                out.extend_from_slice(&value.to_bits().to_le_bytes());
                out.extend_from_slice(&infer_ns.to_le_bytes());
                out.extend_from_slice(&wait_ns.to_le_bytes());
                (FrameType::Prediction, out)
            }
            Reply::Error { code, message } => {
                let msg = message.as_bytes();
                let msg = &msg[..msg.len().min(u16::MAX as usize)];
                let mut out = Vec::with_capacity(3 + msg.len());
                out.push(code.code());
                out.extend_from_slice(&(msg.len() as u16).to_le_bytes());
                out.extend_from_slice(msg);
                (FrameType::Error, out)
            }
            Reply::Pong => (FrameType::Pong, Vec::new()),
        }
    }

    /// Decodes a reply from its frame type and payload.
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed field.
    pub fn decode(frame_type: FrameType, payload: &[u8]) -> Result<Reply, DecodeError> {
        let mut c = Cursor {
            buf: payload,
            pos: 0,
        };
        match frame_type {
            FrameType::Prediction => {
                let value = f64::from_bits(c.u64("prediction bits")?);
                let infer_ns = c.u64("inference wall")?;
                let wait_ns = c.u64("queue wait")?;
                Ok(Reply::Prediction {
                    value,
                    infer_ns,
                    wait_ns,
                })
            }
            FrameType::Error => {
                let code_byte = c.take(1, "error code")?[0];
                let code = ErrorCode::from_code(code_byte)
                    .ok_or_else(|| format!("unknown error code {code_byte}"))?;
                let len = c.u16("error message length")? as usize;
                let message = c.string(len, "error message")?;
                Ok(Reply::Error { code, message })
            }
            FrameType::Pong => Ok(Reply::Pong),
            other => Err(format!("{other:?} is not a reply frame")),
        }
    }
}

/// Client helper: send `request` on `stream` and read the reply.
///
/// # Errors
///
/// Transport errors come back as `io::Error`; protocol violations by the
/// server are folded into `io::ErrorKind::InvalidData`.
pub fn call(stream: &mut (impl Read + Write), request: &Request) -> io::Result<Reply> {
    write_frame(stream, FrameType::Predict, &request.encode())?;
    read_reply(stream)
}

/// Client helper: read and decode one reply frame.
///
/// # Errors
///
/// Same contract as [`call`].
pub fn read_reply(stream: &mut impl Read) -> io::Result<Reply> {
    let (frame_type, payload) = read_frame(stream, DEFAULT_MAX_PAYLOAD).map_err(|e| match e {
        FrameReadError::Io(e) => e,
        FrameReadError::TimedOut => io::Error::new(io::ErrorKind::TimedOut, "reply timed out"),
        FrameReadError::Eof | FrameReadError::Disconnect => io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "server closed the connection before replying",
        ),
        other => io::Error::new(io::ErrorKind::InvalidData, format!("{other:?}")),
    })?;
    Reply::decode(frame_type, &payload)
        .map_err(|msg| io::Error::new(io::ErrorKind::InvalidData, msg))
}

/// Client helper: one liveness round trip.
///
/// # Errors
///
/// Same contract as [`call`].
pub fn ping(stream: &mut (impl Read + Write)) -> io::Result<()> {
    write_frame(stream, FrameType::Ping, &[])?;
    match read_reply(stream)? {
        Reply::Pong => Ok(()),
        other => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("expected Pong, got {other:?}"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> Request {
        Request {
            model: "icnet-demo".into(),
            deadline_ms: 250,
            mask: vec!["n10".into(), "n22".into()],
            bench: "INPUT(a)\nOUTPUT(a)\n".into(),
        }
    }

    #[test]
    fn request_round_trips() {
        let req = sample_request();
        assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        let empty = Request {
            model: String::new(),
            deadline_ms: 0,
            mask: vec![],
            bench: String::new(),
        };
        assert_eq!(Request::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn replies_round_trip() {
        for reply in [
            Reply::Prediction {
                value: -3.25,
                infer_ns: 1_234_567,
                wait_ns: 89,
            },
            Reply::Error {
                code: ErrorCode::BadNetlist,
                message: "line 3: unknown gate kind `FROB`".into(),
            },
            Reply::Pong,
        ] {
            let (ft, payload) = reply.encode();
            assert_eq!(Reply::decode(ft, &payload).unwrap(), reply);
        }
    }

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let req = sample_request();
        let mut wire = Vec::new();
        write_frame(&mut wire, FrameType::Predict, &req.encode()).unwrap();
        let (ft, payload) = read_frame(&mut wire.as_slice(), DEFAULT_MAX_PAYLOAD).unwrap();
        assert_eq!(ft, FrameType::Predict);
        assert_eq!(Request::decode(&payload).unwrap(), req);
    }

    #[test]
    fn truncated_request_payloads_are_typed_errors() {
        let full = sample_request().encode();
        for cut in 0..full.len() {
            let err = Request::decode(&full[..cut]);
            assert!(err.is_err(), "prefix of {cut} bytes must not decode");
        }
        // A trailing garnish is also rejected: request frames are exact.
        let mut long = full.clone();
        long.push(0);
        assert!(Request::decode(&long).unwrap_err().contains("trailing"));
    }

    #[test]
    fn hostile_mask_count_is_rejected_without_allocation() {
        let mut payload = Vec::new();
        payload.extend_from_slice(&2u16.to_le_bytes());
        payload.extend_from_slice(b"ok");
        payload.extend_from_slice(&0u32.to_le_bytes());
        payload.extend_from_slice(&u32::MAX.to_le_bytes()); // mask count
        let err = Request::decode(&payload).unwrap_err();
        assert!(err.contains("mask count"), "{err}");
    }

    #[test]
    fn bad_magic_type_and_length_are_distinct_errors() {
        let mut wire = Vec::new();
        write_frame(&mut wire, FrameType::Ping, &[]).unwrap();
        wire[0] = b'X';
        assert!(matches!(
            read_frame(&mut wire.as_slice(), 1024),
            Err(FrameReadError::BadMagic(_))
        ));

        let mut wire = Vec::new();
        write_frame(&mut wire, FrameType::Ping, &[]).unwrap();
        wire[4] = 0x7f;
        assert!(matches!(
            read_frame(&mut wire.as_slice(), 1024),
            Err(FrameReadError::BadType(0x7f))
        ));

        let mut wire = Vec::new();
        write_frame(&mut wire, FrameType::Predict, &[0u8; 64]).unwrap();
        assert!(matches!(
            read_frame(&mut wire.as_slice(), 16),
            Err(FrameReadError::TooLarge(64))
        ));
    }

    #[test]
    fn eof_vs_disconnect_is_positional() {
        assert!(matches!(
            read_frame(&mut (&[][..]), 1024),
            Err(FrameReadError::Eof)
        ));
        let mut wire = Vec::new();
        write_frame(&mut wire, FrameType::Ping, &[]).unwrap();
        assert!(matches!(
            read_frame(&mut (&wire[..5]), 1024),
            Err(FrameReadError::Disconnect)
        ));
    }

    #[test]
    fn error_codes_round_trip() {
        for code in [
            ErrorCode::Overloaded,
            ErrorCode::DeadlineExceeded,
            ErrorCode::BadFrame,
            ErrorCode::PayloadTooLarge,
            ErrorCode::BadNetlist,
            ErrorCode::UnknownModel,
            ErrorCode::UnknownGate,
            ErrorCode::BadRequest,
            ErrorCode::ShuttingDown,
            ErrorCode::Internal,
        ] {
            assert_eq!(ErrorCode::from_code(code.code()), Some(code));
            assert!(!code.tag().is_empty());
        }
        assert_eq!(ErrorCode::from_code(0), None);
        assert_eq!(ErrorCode::from_code(200), None);
    }
}
