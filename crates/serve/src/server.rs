//! The overload-hardened server: acceptor, bounded admission queue, worker
//! pool, per-request deadlines, and graceful drain.
//!
//! # Overload / backpressure state machine
//!
//! The acceptor thread is the only place connections enter the system, and
//! it never blocks on anything slower than a bounded-timeout socket write:
//!
//! 1. `accept()` (non-blocking, polled) — a new connection arrives.
//! 2. If the admission queue is at capacity, the connection is **shed**: a
//!    typed [`ErrorCode::Overloaded`] reply is written best-effort under a
//!    short write timeout and the socket is dropped. The acceptor is back
//!    at `accept()` within one bounded write — overload can never make the
//!    listen backlog the failure point.
//! 3. Otherwise the connection is **admitted**: timestamped, stamped with a
//!    request sequence number, and queued. Queue wait counts against the
//!    request's deadline, so a request that aged out in the queue fails
//!    fast with `DeadlineExceeded` instead of wasting inference on it.
//!
//! Workers pull admitted connections, serve every frame on them (a
//! connection may carry many sequential requests), and reply with typed
//! errors for every malformed, oversized, truncated, or expired request.
//! A worker death (panic or injected `serve.worker` die fault) is detected
//! by the monitor thread, which respawns the pool back to strength.
//!
//! Shutdown ([`CancelToken`]) is a drain, mirroring the PR 5 SIGINT
//! semantics: the acceptor stops admitting (late connections get
//! [`ErrorCode::ShuttingDown`]), workers finish every admitted request at a
//! request boundary, and `join` returns only when the pool is idle.

use crate::microbatch::{self, BatchStats, InferJob, InferOutcome};
use crate::protocol::{
    read_frame, write_frame, ErrorCode, FrameReadError, FrameType, Reply, Request,
    DEFAULT_MAX_PAYLOAD,
};
use crate::registry::ModelRegistry;
use attack::CancelToken;
use icnet::{encode_features, CircuitGraph};
use netlist::Circuit;
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Tuning knobs of one server instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address; port 0 picks a free port (see [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads (each serves one connection at a time).
    pub workers: usize,
    /// Bounded admission-queue depth; connections beyond it are shed.
    pub queue_depth: usize,
    /// Frame payload cap; larger declared lengths are refused unread.
    pub max_payload: u32,
    /// Server-side deadline per request when the client does not set one.
    pub default_deadline: Duration,
    /// Hard ceiling on any deadline a client may request.
    pub max_deadline: Duration,
    /// Socket read/write timeout — bounds how long a slow or vanished
    /// client can hold a worker.
    pub io_timeout: Duration,
    /// How long a kept-alive connection may sit silent between requests
    /// before the server closes it (no byte of a next frame has arrived).
    pub idle_timeout: Duration,
    /// Whole-request wall cap: once the first byte of a frame arrives, the
    /// complete frame must be read within this window. The per-call
    /// `io_timeout` alone cannot stop a slow-loris client — every trickled
    /// byte restarts it — so this deadline is what actually frees the
    /// worker.
    pub request_timeout: Duration,
    /// Most requests one connection may carry before the server closes it
    /// (`0` = unlimited). Each worker serves one connection at a time, so
    /// this caps how long a single chatty connection can monopolize a
    /// worker while others wait in the admission queue.
    pub max_requests_per_conn: usize,
    /// Process RSS watermark in bytes: at or above it, new connections are
    /// shed `Overloaded` *before* the OS OOM killer makes the decision.
    /// Physical RSS is machine-dependent, which is exactly right here —
    /// shedding protects this process on this machine and never feeds a
    /// label (see the `budget` crate for the logical/physical split).
    pub mem_watermark: Option<u64>,
    /// How long the inference micro-batcher holds the first queued request
    /// while it waits for company (never past any held request's deadline).
    /// `0` runs every request alone through the same path.
    pub batch_window: Duration,
    /// Most requests one batched forward pass may serve.
    pub max_batch: usize,
    /// Cooperative shutdown token (the binaries pass the SIGINT token).
    pub cancel: CancelToken,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            queue_depth: 64,
            max_payload: DEFAULT_MAX_PAYLOAD,
            default_deadline: Duration::from_secs(5),
            max_deadline: Duration::from_secs(60),
            io_timeout: Duration::from_secs(2),
            idle_timeout: Duration::from_secs(2),
            request_timeout: Duration::from_secs(10),
            max_requests_per_conn: 1024,
            mem_watermark: None,
            batch_window: Duration::from_millis(1),
            max_batch: 16,
            cancel: CancelToken::default(),
        }
    }
}

/// Monotonic counters, updated lock-free by every thread of the server.
#[derive(Debug, Default)]
struct Counters {
    admitted: AtomicU64,
    completed: AtomicU64,
    shed: AtomicU64,
    errors: AtomicU64,
    worker_deaths: AtomicU64,
    respawns: AtomicU64,
    peak_request_bytes: AtomicU64,
}

/// Snapshot of the server's lifetime counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests admitted to the queue (including ping-only connections).
    pub admitted: u64,
    /// Requests answered with a prediction.
    pub completed: u64,
    /// Connections shed with `Overloaded` (or `ShuttingDown`).
    pub shed: u64,
    /// Requests answered with any other typed error.
    pub errors: u64,
    /// Worker threads that died (fault injection or panic).
    pub worker_deaths: u64,
    /// Replacement workers spawned by the monitor.
    pub respawns: u64,
    /// Batched forward passes the micro-batcher executed (including
    /// singleton groups).
    pub infer_batches: u64,
    /// Requests answered through a micro-batch of size ≥ 2.
    pub batched_requests: u64,
    /// Peak logical bytes any one request's inference inputs reached
    /// (propagation operator + feature matrix). Logical bytes are bytes
    /// requested, not allocator overhead — deterministic for a given
    /// request stream (see the `budget` crate).
    pub peak_request_bytes: u64,
}

struct Shared {
    registry: ModelRegistry,
    config: ServeConfig,
    queue_len: AtomicUsize,
    counters: Counters,
    batch_stats: Arc<BatchStats>,
    /// Sender side of the micro-batcher queue; `join` takes it to let the
    /// batcher thread drain and exit.
    infer_tx: Mutex<Option<SyncSender<InferJob>>>,
}

impl Shared {
    fn snapshot(&self) -> ServeStats {
        ServeStats {
            admitted: self.counters.admitted.load(Ordering::Relaxed),
            completed: self.counters.completed.load(Ordering::Relaxed),
            shed: self.counters.shed.load(Ordering::Relaxed),
            errors: self.counters.errors.load(Ordering::Relaxed),
            worker_deaths: self.counters.worker_deaths.load(Ordering::Relaxed),
            respawns: self.counters.respawns.load(Ordering::Relaxed),
            infer_batches: self.batch_stats.batches.load(Ordering::Relaxed),
            batched_requests: self.batch_stats.batched_jobs.load(Ordering::Relaxed),
            peak_request_bytes: self.counters.peak_request_bytes.load(Ordering::Relaxed),
        }
    }
}

/// One admitted connection, queued for a worker.
struct Job {
    stream: TcpStream,
    admitted_at: Instant,
    seq: u64,
}

/// A running server. Dropping the handle does **not** stop the server;
/// call [`Server::shutdown`] or cancel the configured token and
/// [`Server::join`].
pub struct Server {
    addr: SocketAddr,
    cancel: CancelToken,
    shared: Arc<Shared>,
    acceptor: std::thread::JoinHandle<()>,
    monitor: std::thread::JoinHandle<()>,
    batcher: std::thread::JoinHandle<()>,
}

impl Server {
    /// Binds the listener, spawns the acceptor, worker pool, and monitor,
    /// and returns immediately.
    ///
    /// # Errors
    ///
    /// Propagates the bind error.
    pub fn start(registry: ModelRegistry, config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let cancel = config.cancel.clone();
        // The inference queue: every worker blocks on its own reply before
        // sending another job, so a bound of one slot per worker can never
        // stall the pool.
        let (infer_sender, infer_receiver) =
            std::sync::mpsc::sync_channel::<InferJob>(config.workers.max(1));
        let batch_stats = Arc::new(BatchStats::default());
        let shared = Arc::new(Shared {
            registry,
            config,
            queue_len: AtomicUsize::new(0),
            counters: Counters::default(),
            batch_stats: Arc::clone(&batch_stats),
            infer_tx: Mutex::new(Some(infer_sender)),
        });
        let (sender, receiver) =
            std::sync::mpsc::sync_channel::<Job>(shared.config.queue_depth.max(1));
        let receiver = Arc::new(Mutex::new(receiver));

        let mut workers = Vec::with_capacity(shared.config.workers.max(1));
        for id in 0..shared.config.workers.max(1) {
            workers.push(spawn_worker(id, Arc::clone(&shared), Arc::clone(&receiver)));
        }

        let batcher = {
            let window = shared.config.batch_window;
            let max_batch = shared.config.max_batch.max(1);
            std::thread::Builder::new()
                .name("serve-batcher".into())
                .spawn(move || {
                    microbatch::run_batcher(infer_receiver, window, max_batch, batch_stats)
                })
                .expect("spawn batcher")
        };

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("serve-acceptor".into())
                .spawn(move || accept_loop(listener, shared, sender))
                .expect("spawn acceptor")
        };
        let monitor = {
            let shared = Arc::clone(&shared);
            let receiver = Arc::clone(&receiver);
            std::thread::Builder::new()
                .name("serve-monitor".into())
                .spawn(move || monitor_loop(shared, receiver, workers))
                .expect("spawn monitor")
        };

        Ok(Server {
            addr,
            cancel,
            shared,
            acceptor,
            monitor,
            batcher,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current lifetime counters.
    pub fn stats(&self) -> ServeStats {
        self.shared.snapshot()
    }

    /// Trips the cancel token and drains: stops admitting, finishes every
    /// admitted request, joins all threads. Returns the final counters.
    pub fn shutdown(self) -> ServeStats {
        self.cancel.cancel();
        self.join()
    }

    /// Blocks until the cancel token trips (e.g. SIGINT) and the drain
    /// completes. Returns the final counters.
    pub fn join(self) -> ServeStats {
        let _ = self.acceptor.join();
        let _ = self.monitor.join();
        // Workers are all gone now; dropping the last sender lets the
        // batcher drain its queue and exit.
        drop(
            self.shared
                .infer_tx
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take(),
        );
        let _ = self.batcher.join();
        self.shared.snapshot()
    }
}

/// How long the acceptor sleeps when `accept` would block.
const ACCEPT_POLL: Duration = Duration::from_millis(2);
/// Write timeout for shed replies — the acceptor may never block long.
const SHED_WRITE_TIMEOUT: Duration = Duration::from_millis(100);
/// Monitor poll interval for dead-worker detection.
const MONITOR_POLL: Duration = Duration::from_millis(25);
/// Worker queue-poll interval while idle (bounds shutdown latency).
const WORKER_POLL: Duration = Duration::from_millis(25);

fn accept_loop(listener: TcpListener, shared: Arc<Shared>, sender: SyncSender<Job>) {
    let cancel = shared.config.cancel.clone();
    while !cancel.is_cancelled() {
        let (stream, _peer) = match listener.accept() {
            Ok(conn) => conn,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
                continue;
            }
            // Transient accept failures (EMFILE, ECONNABORTED, ...) must
            // never take the acceptor down; back off briefly and retry.
            Err(_) => {
                std::thread::sleep(ACCEPT_POLL);
                continue;
            }
        };
        if let Some(fault) = faults::inject("serve.accept") {
            match fault.action {
                faults::Action::Io => {
                    // Simulated accept-path failure: the connection is lost
                    // but the acceptor keeps serving the next one.
                    drop(stream);
                    continue;
                }
                _ => fault.unsupported("serve.accept"),
            }
        }
        let seq = shared.counters.admitted.fetch_add(1, Ordering::Relaxed);
        let depth = shared.queue_len.load(Ordering::Relaxed);
        if depth >= shared.config.queue_depth {
            shed(&shared, stream, seq, depth, ErrorCode::Overloaded);
            continue;
        }
        // Memory watermark: shed while the process can still say so. RSS is
        // re-read per connection — cheap (one /proc read) next to accepting
        // a socket, and admission is exactly when memory pressure must gate.
        if let Some(mark) = shared.config.mem_watermark {
            if budget::process_rss_bytes().is_some_and(|rss| rss >= mark) {
                shed(&shared, stream, seq, depth, ErrorCode::Overloaded);
                continue;
            }
        }
        let _ = stream.set_read_timeout(Some(shared.config.io_timeout));
        let _ = stream.set_write_timeout(Some(shared.config.io_timeout));
        shared.queue_len.fetch_add(1, Ordering::Relaxed);
        let job = Job {
            stream,
            admitted_at: Instant::now(),
            seq,
        };
        match sender.try_send(job) {
            Ok(()) => {}
            Err(TrySendError::Full(job)) | Err(TrySendError::Disconnected(job)) => {
                // The channel bound and queue_len can disagree by a hair
                // under races; the channel is the authority — shed.
                shared.queue_len.fetch_sub(1, Ordering::Relaxed);
                let depth = shared.queue_len.load(Ordering::Relaxed);
                shed(&shared, job.stream, seq, depth, ErrorCode::Overloaded);
            }
        }
    }
    // Drain phase: late connections get a typed ShuttingDown, never a hang.
    // Dropping the sender below releases the workers once the queue empties.
    drop(sender);
    while let Ok((stream, _)) = listener.accept() {
        let seq = shared.counters.admitted.fetch_add(1, Ordering::Relaxed);
        let depth = shared.queue_len.load(Ordering::Relaxed);
        shed(&shared, stream, seq, depth, ErrorCode::ShuttingDown);
    }
}

/// Sheds a connection with a typed error, best-effort under a short write
/// timeout, and records it. The acceptor must be back at `accept()` fast.
fn shed(shared: &Shared, mut stream: TcpStream, seq: u64, depth: usize, code: ErrorCode) {
    shared.counters.shed.fetch_add(1, Ordering::Relaxed);
    let _ = stream.set_write_timeout(Some(SHED_WRITE_TIMEOUT));
    let reply = Reply::Error {
        code,
        message: match code {
            ErrorCode::Overloaded => format!("admission queue full ({depth} queued)"),
            _ => "server is draining for shutdown".to_owned(),
        },
    };
    let (ft, payload) = reply.encode();
    let _ = write_frame(&mut stream, ft, &payload);
    let _ = stream.flush();
    emit_request_event(seq, depth, 0, 0, 0, code.tag());
}

fn emit_request_event(
    seq: u64,
    queue_depth: usize,
    wait_ns: u64,
    infer_ns: u64,
    wall_ns: u64,
    outcome: &'static str,
) {
    if obs::enabled() {
        obs::emit(obs::EventKind::ServeRequest {
            seq,
            queue_depth: queue_depth as u64,
            wait_ns,
            infer_ns,
            wall_ns,
            outcome,
        });
    }
}

fn monitor_loop(
    shared: Arc<Shared>,
    receiver: Arc<Mutex<Receiver<Job>>>,
    mut workers: Vec<std::thread::JoinHandle<()>>,
) {
    let cancel = shared.config.cancel.clone();
    let mut next_id = workers.len();
    loop {
        let draining = cancel.is_cancelled();
        let mut alive = Vec::with_capacity(workers.len());
        for handle in workers.drain(..) {
            if handle.is_finished() {
                let _ = handle.join();
                if !draining {
                    // Self-heal: the pool is restored to full strength no
                    // matter how the worker died (fault, panic, bug).
                    shared.counters.respawns.fetch_add(1, Ordering::Relaxed);
                    alive.push(spawn_worker(
                        next_id,
                        Arc::clone(&shared),
                        Arc::clone(&receiver),
                    ));
                    next_id += 1;
                }
            } else {
                alive.push(handle);
            }
        }
        workers = alive;
        if draining && workers.is_empty() {
            return;
        }
        if draining {
            // Workers exit on their own once the queue disconnects; just
            // wait for them.
            for handle in workers.drain(..) {
                let _ = handle.join();
            }
            return;
        }
        std::thread::sleep(MONITOR_POLL);
    }
}

fn spawn_worker(
    id: usize,
    shared: Arc<Shared>,
    receiver: Arc<Mutex<Receiver<Job>>>,
) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("serve-worker-{id}"))
        .spawn(move || worker_loop(shared, receiver))
        .expect("spawn worker")
}

fn worker_loop(shared: Arc<Shared>, receiver: Arc<Mutex<Receiver<Job>>>) {
    loop {
        let job = {
            let guard = receiver.lock().unwrap_or_else(|e| e.into_inner());
            guard.recv_timeout(WORKER_POLL)
        };
        match job {
            Ok(job) => {
                shared.queue_len.fetch_sub(1, Ordering::Relaxed);
                if let Some(fault) = faults::inject("serve.worker") {
                    match fault.action {
                        faults::Action::Die => {
                            // Chaos: this worker dies with the job in hand.
                            // The client sees a dropped connection; the
                            // monitor restores the pool.
                            shared
                                .counters
                                .worker_deaths
                                .fetch_add(1, Ordering::Relaxed);
                            return;
                        }
                        _ => fault.unsupported("serve.worker"),
                    }
                }
                serve_connection(&shared, job);
            }
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                // Idle poll. Workers drain admitted jobs even after cancel;
                // they exit only when the acceptor hangs up the channel.
                continue;
            }
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Serves every frame on one admitted connection. All failure modes reply
/// with a typed error where a reply is still possible, and never propagate
/// out of this function — the worker survives to take the next connection.
fn serve_connection(shared: &Shared, job: Job) {
    let Job {
        mut stream,
        admitted_at,
        seq,
    } = job;
    let cancel = &shared.config.cancel;
    // The first request's deadline starts at admission: queue wait is the
    // client's problem too, and a request that aged out in the queue must
    // fail fast instead of burning a worker on a stale answer.
    let mut request_start = admitted_at;
    let mut first = true;
    let mut served: usize = 0;
    loop {
        let cap = shared.config.max_requests_per_conn;
        if cap != 0 && served >= cap {
            // One connection may not monopolize a worker forever while the
            // admission queue backs up; the client reconnects and re-enters
            // admission like everyone else.
            let _ = send_reply(
                &mut stream,
                &Reply::Error {
                    code: ErrorCode::Overloaded,
                    message: format!("connection reached its {cap}-request cap; reconnect"),
                },
            );
            shared.counters.shed.fetch_add(1, Ordering::Relaxed);
            emit_request_event(
                seq,
                shared.queue_len.load(Ordering::Relaxed),
                0,
                0,
                0,
                "conn_cap",
            );
            break;
        }
        let mut reader = PacedReader::new(&stream, &shared.config);
        let read_result = read_frame(&mut reader, shared.config.max_payload);
        let mid_frame = reader.mid_frame();
        let (frame_type, payload) = match read_result {
            Ok(frame) => frame,
            Err(e) => {
                let (outcome, reply): (&'static str, Option<Reply>) = match e {
                    FrameReadError::Eof => break, // clean end of connection
                    FrameReadError::Disconnect => ("disconnect", None),
                    FrameReadError::TimedOut if mid_frame => (
                        "slow_loris",
                        Some(Reply::Error {
                            code: ErrorCode::BadFrame,
                            message: format!(
                                "frame did not complete within the whole-request timeout ({:?})",
                                shared.config.request_timeout
                            ),
                        }),
                    ),
                    FrameReadError::TimedOut => (
                        "slow_client",
                        Some(Reply::Error {
                            code: ErrorCode::BadFrame,
                            message: "no frame arrived within the socket timeout".into(),
                        }),
                    ),
                    FrameReadError::Io(err) => {
                        if faults_read_error(&err) {
                            ("fault_io", None)
                        } else {
                            ("io", None)
                        }
                    }
                    FrameReadError::BadMagic(m) => (
                        ErrorCode::BadFrame.tag(),
                        Some(Reply::Error {
                            code: ErrorCode::BadFrame,
                            message: format!("bad frame magic {m:02x?}"),
                        }),
                    ),
                    FrameReadError::BadType(b) => (
                        ErrorCode::BadFrame.tag(),
                        Some(Reply::Error {
                            code: ErrorCode::BadFrame,
                            message: format!("unknown frame type 0x{b:02x}"),
                        }),
                    ),
                    FrameReadError::TooLarge(len) => (
                        ErrorCode::PayloadTooLarge.tag(),
                        Some(Reply::Error {
                            code: ErrorCode::PayloadTooLarge,
                            message: format!(
                                "declared payload of {len} bytes exceeds the {}-byte cap",
                                shared.config.max_payload
                            ),
                        }),
                    ),
                };
                if let Some(reply) = reply {
                    let _ = send_reply(&mut stream, &reply);
                }
                shared.counters.errors.fetch_add(1, Ordering::Relaxed);
                emit_request_event(
                    seq,
                    shared.queue_len.load(Ordering::Relaxed),
                    0,
                    0,
                    request_start.elapsed().as_nanos() as u64,
                    outcome,
                );
                break;
            }
        };
        if !first {
            request_start = Instant::now();
        }
        let wait_ns = if first {
            request_start.elapsed().as_nanos() as u64
        } else {
            0
        };
        first = false;
        served += 1;

        match frame_type {
            FrameType::Ping => {
                if send_reply(&mut stream, &Reply::Pong).is_err() {
                    break;
                }
            }
            FrameType::Predict => {
                let _ctx = obs::context(seq);
                let infer_start = Instant::now();
                // A panic anywhere in the pipeline is a typed Internal
                // error, not a dead worker: catch_unwind is the last line
                // of the "one bad request never poisons the fleet" rule.
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    handle_predict(shared, &payload, request_start)
                }));
                let reply = match result {
                    Ok(reply) => reply,
                    Err(_) => Reply::Error {
                        code: ErrorCode::Internal,
                        message: "prediction pipeline panicked; the worker survived".into(),
                    },
                };
                let infer_ns = infer_start.elapsed().as_nanos() as u64;
                let outcome = match &reply {
                    Reply::Prediction { .. } => {
                        shared.counters.completed.fetch_add(1, Ordering::Relaxed);
                        "ok"
                    }
                    Reply::Error { code, .. } => {
                        shared.counters.errors.fetch_add(1, Ordering::Relaxed);
                        code.tag()
                    }
                    Reply::Pong => unreachable!("predict never answers Pong"),
                };
                let reply = match reply {
                    Reply::Prediction { value, .. } => Reply::Prediction {
                        value,
                        infer_ns,
                        wait_ns,
                    },
                    other => other,
                };
                let write_ok = send_reply(&mut stream, &reply).is_ok();
                emit_request_event(
                    seq,
                    shared.queue_len.load(Ordering::Relaxed),
                    wait_ns,
                    infer_ns,
                    request_start.elapsed().as_nanos() as u64,
                    outcome,
                );
                if !write_ok {
                    break;
                }
            }
            // A client sending server-side frame types is confused; tell it
            // so and drop the connection.
            FrameType::Prediction | FrameType::Error | FrameType::Pong => {
                let _ = send_reply(
                    &mut stream,
                    &Reply::Error {
                        code: ErrorCode::BadFrame,
                        message: format!("{frame_type:?} is not a request frame"),
                    },
                );
                shared.counters.errors.fetch_add(1, Ordering::Relaxed);
                break;
            }
        }
        if cancel.is_cancelled() {
            // Request boundary: the in-flight request above completed and
            // was answered; new work on this connection is refused.
            let _ = send_reply(
                &mut stream,
                &Reply::Error {
                    code: ErrorCode::ShuttingDown,
                    message: "server is draining for shutdown".into(),
                },
            );
            break;
        }
    }
}

/// Distinguishes the injected `serve.read` io fault from real transport
/// errors so traces stay honest about which failures were synthetic.
fn faults_read_error(e: &std::io::Error) -> bool {
    e.to_string().contains("injected fault")
}

/// Writes one reply, honouring the `serve.write` fault site.
fn send_reply(stream: &mut TcpStream, reply: &Reply) -> std::io::Result<()> {
    if let Some(fault) = faults::inject("serve.write") {
        match fault.action {
            faults::Action::Io => {
                return Err(std::io::Error::other(format!(
                    "injected fault: serve.write io (occurrence {})",
                    fault.occurrence
                )));
            }
            faults::Action::Torn => {
                // Write half the frame, then fail: the client sees a
                // truncated reply and must treat it as a disconnect.
                let (ft, payload) = reply.encode();
                let mut buf = Vec::new();
                write_frame(&mut buf, ft, &payload)?;
                let half = buf.len() / 2;
                stream.write_all(&buf[..half])?;
                return Err(std::io::Error::other(format!(
                    "injected fault: serve.write torn after {half} bytes (occurrence {})",
                    fault.occurrence
                )));
            }
            _ => fault.unsupported("serve.write"),
        }
    }
    let (ft, payload) = reply.encode();
    write_frame(stream, ft, &payload)
}

/// A socket reader that enforces two timescales the per-call `io_timeout`
/// cannot: an **idle** window while waiting for the first byte of the next
/// frame, and a **whole-request** deadline once that byte arrives. A
/// slow-loris client trickling one byte per `io_timeout` restarts a plain
/// socket timeout forever; here every trickled byte still counts against
/// one fixed deadline, so the worker frees in bounded time no matter how
/// the bytes are paced.
struct PacedReader<'a> {
    stream: &'a TcpStream,
    io: Duration,
    idle: Duration,
    request_timeout: Duration,
    /// Set when the first byte of the current frame arrives.
    deadline: Option<Instant>,
}

impl<'a> PacedReader<'a> {
    fn new(stream: &'a TcpStream, config: &ServeConfig) -> Self {
        PacedReader {
            stream,
            io: config.io_timeout,
            idle: config.idle_timeout,
            request_timeout: config.request_timeout,
            deadline: None,
        }
    }

    /// Whether the frame had started arriving when the read gave up — the
    /// difference between an idle keep-alive (benign) and a slow-loris
    /// frame that never completed (hostile or broken).
    fn mid_frame(&self) -> bool {
        self.deadline.is_some()
    }
}

impl std::io::Read for PacedReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let timeout = match self.deadline {
            None => self.idle,
            Some(deadline) => {
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "whole-request timeout expired mid-frame",
                    ));
                }
                remaining.min(self.io)
            }
        };
        // `set_read_timeout(Some(0))` is an invalid argument; clamp up.
        self.stream
            .set_read_timeout(Some(timeout.max(Duration::from_millis(1))))?;
        let mut conn: &TcpStream = self.stream;
        let n = std::io::Read::read(&mut conn, buf)?;
        if n > 0 && self.deadline.is_none() {
            self.deadline = Some(Instant::now() + self.request_timeout);
        }
        Ok(n)
    }
}

/// Deadline polled at every pipeline stage boundary — the same idiom as the
/// SAT solver's wall-clock deadline (poll cheap, stop at the next seam).
struct Deadline(Instant);

impl Deadline {
    fn expired(&self) -> bool {
        Instant::now() >= self.0
    }
}

/// Runs the full request pipeline: decode → registry lookup → parse →
/// graph/features → predict, checking the deadline between stages.
fn handle_predict(shared: &Shared, payload: &[u8], request_start: Instant) -> Reply {
    let error = |code: ErrorCode, message: String| Reply::Error { code, message };

    // Honour the injected serve.read fault here (rather than inside the
    // socket read) so it reliably hits a request frame, not a ping.
    if let Some(fault) = faults::inject("serve.read") {
        match fault.action {
            faults::Action::Io => {
                return error(
                    ErrorCode::BadFrame,
                    format!(
                        "injected fault: serve.read io (occurrence {})",
                        fault.occurrence
                    ),
                );
            }
            _ => fault.unsupported("serve.read"),
        }
    }

    let request = match Request::decode(payload) {
        Ok(request) => request,
        Err(msg) => return error(ErrorCode::BadFrame, format!("malformed request: {msg}")),
    };
    let budget = if request.deadline_ms == 0 {
        shared.config.default_deadline
    } else {
        Duration::from_millis(u64::from(request.deadline_ms)).min(shared.config.max_deadline)
    };
    let deadline = Deadline(request_start + budget);
    let expired = || {
        error(
            ErrorCode::DeadlineExceeded,
            format!("deadline of {budget:?} expired (includes queue wait)"),
        )
    };
    // A request that is already past its deadline on arrival — it aged out
    // in the admission queue, or the client asked for a budget smaller than
    // its own send latency — fails fast before any pipeline stage runs.
    if deadline.expired() {
        return expired();
    }

    let Some(entry) = shared.registry.get(&request.model) else {
        return error(
            ErrorCode::UnknownModel,
            format!(
                "model `{}` is not registered (available: {})",
                request.model,
                shared.registry.names().join(", ")
            ),
        );
    };
    if deadline.expired() {
        return expired();
    }

    let circuit = match Circuit::from_bench(request.model.clone(), &request.bench) {
        Ok(circuit) => circuit,
        Err(e) => return error(ErrorCode::BadNetlist, e.to_string()),
    };
    if deadline.expired() {
        return expired();
    }

    let mut selected = Vec::with_capacity(request.mask.len());
    for name in &request.mask {
        match circuit.find(name) {
            Some(id) => selected.push(id),
            None => {
                return error(
                    ErrorCode::UnknownGate,
                    format!("mask names `{name}`, which is not in the netlist"),
                );
            }
        }
    }
    if deadline.expired() {
        return expired();
    }

    // The cheap per-request stages stay on this worker; the expensive GNN
    // forward pass goes through the micro-batcher, which packs concurrent
    // same-model requests into one batched inference.
    let graph = CircuitGraph::from_circuit(&circuit);
    let op = Arc::new(entry.model.kind.operator(&graph));
    let x = encode_features(&circuit, &selected, entry.features);
    // Logical bytes of this request's inference inputs — the dominant
    // per-request allocations. Deterministic for a given request stream, so
    // the peak lands in BENCH_serve.json as a comparable number.
    let request_bytes = op.logical_bytes() + x.logical_bytes();
    shared
        .counters
        .peak_request_bytes
        .fetch_max(request_bytes, Ordering::Relaxed);
    if obs::enabled() {
        obs::emit(obs::EventKind::MemHighwater {
            scope: "serve.request",
            bytes: request_bytes,
        });
    }
    if deadline.expired() {
        return expired();
    }

    let sender = shared
        .infer_tx
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone();
    let Some(tx) = sender else {
        // The batcher is gone (shutdown drain); in-flight requests still
        // deserve an answer, so fall back to a direct forward pass.
        let value = entry.model.predict(&op, &x);
        return finish_prediction(value, &entry.name, &deadline, expired);
    };
    let (reply_tx, reply_rx) = std::sync::mpsc::channel();
    let job = InferJob {
        model_name: entry.name.clone(),
        model: Arc::clone(&entry.model),
        op,
        x,
        deadline: deadline.0,
        reply: reply_tx,
    };
    if let Err(std::sync::mpsc::SendError(job)) = tx.send(job) {
        // The batcher hung up between the clone and the send; same fallback.
        let value = entry.model.predict(&job.op, &job.x);
        return finish_prediction(value, &entry.name, &deadline, expired);
    }

    // The batcher answers within deadline + window by construction; the
    // extra slack only guards against a wedged thread.
    let wait = deadline
        .0
        .saturating_duration_since(Instant::now())
        .saturating_add(shared.config.batch_window)
        .saturating_add(Duration::from_secs(1));
    match reply_rx.recv_timeout(wait) {
        Ok(InferOutcome::Value(value)) => finish_prediction(value, &entry.name, &deadline, expired),
        Ok(InferOutcome::Expired) => expired(),
        Ok(InferOutcome::NonFinite(message)) => error(ErrorCode::BadRequest, message),
        Ok(InferOutcome::Panicked) => error(
            ErrorCode::Internal,
            "prediction pipeline panicked; the worker survived".into(),
        ),
        Err(_) => error(
            ErrorCode::Internal,
            "inference batcher did not answer".into(),
        ),
    }
}

/// Stamps the post-inference deadline check and wraps the value.
fn finish_prediction(
    value: f64,
    model_name: &str,
    deadline: &Deadline,
    expired: impl Fn() -> Reply,
) -> Reply {
    if deadline.expired() {
        // The work finished but too late; an honest deadline error beats a
        // stale answer the client has already given up on.
        return expired();
    }
    if value.is_finite() {
        Reply::Prediction {
            value,
            infer_ns: 0, // stamped by the caller with the measured wall
            wait_ns: 0,
        }
    } else {
        Reply::Error {
            code: ErrorCode::BadRequest,
            message: format!("model `{model_name}` produced a non-finite prediction"),
        }
    }
}
