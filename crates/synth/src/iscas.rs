//! ISCAS-85 benchmark profiles.
//!
//! Shapes (primary inputs, primary outputs, logic gates) follow the published
//! ISCAS-85 circuit statistics; `c1529` is the paper's evaluation circuit
//! (total gate number 1529, Section IV-A), which the paper does not name, so
//! its input/output counts here are representative rather than quoted.

use crate::generator::generate;
use crate::profile::GeneratorConfig;
use netlist::Circuit;

/// (name, inputs, outputs, logic gates) for each supported profile.
const PROFILES: [(&str, usize, usize, usize); 12] = [
    ("c17", 5, 2, 6),
    ("c432", 36, 7, 160),
    ("c499", 41, 32, 202),
    ("c880", 60, 26, 383),
    ("c1355", 41, 32, 546),
    ("c1529", 50, 25, 1479), // paper's circuit: 1529 total gates
    ("c1908", 33, 25, 880),
    ("c2670", 233, 140, 1193),
    ("c3540", 50, 22, 1669),
    ("c5315", 178, 123, 2307),
    ("c6288", 32, 32, 2406),
    ("c7552", 207, 108, 3512),
];

/// Names of all supported profiles, in size order.
pub fn names() -> Vec<&'static str> {
    PROFILES.iter().map(|p| p.0).collect()
}

/// The generator configuration for a named ISCAS-85 profile (seed 0).
pub fn profile(name: &str) -> Option<GeneratorConfig> {
    PROFILES
        .iter()
        .find(|p| p.0 == name)
        .map(|&(n, i, o, g)| GeneratorConfig::new(n, i, o, g))
}

/// Generates the profile-matched synthetic circuit for `name` with `seed`.
///
/// Returns `None` for unknown names. `"c17"` returns the genuine embedded
/// ISCAS-85 netlist regardless of seed (it is small enough to ship).
pub fn circuit(name: &str, seed: u64) -> Option<Circuit> {
    if name == "c17" {
        return Some(netlist::c17());
    }
    profile(name).map(|cfg| generate(&cfg.with_seed(seed)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_exist() {
        for name in names() {
            assert!(profile(name).is_some(), "{name}");
        }
        assert!(profile("c9999").is_none());
        assert!(circuit("c9999", 0).is_none());
    }

    #[test]
    fn c17_is_the_genuine_netlist() {
        assert_eq!(circuit("c17", 123).unwrap(), netlist::c17());
    }

    #[test]
    fn paper_circuit_has_1529_gates_total() {
        let c = circuit("c1529", 0).unwrap();
        assert_eq!(c.num_gates(), 1529);
    }

    #[test]
    fn c432_shape() {
        let c = circuit("c432", 0).unwrap();
        assert_eq!(c.inputs().len(), 36);
        assert_eq!(c.outputs().len(), 7);
        assert_eq!(c.num_logic_gates(), 160);
    }
}
