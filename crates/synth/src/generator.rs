use crate::profile::GeneratorConfig;
use netlist::{Circuit, CircuitBuilder, GateId, GateKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a random combinational circuit matching `config`.
///
/// Wiring uses an exponential look-back distribution so most fan-ins come
/// from recently created gates (yielding realistic depth), with occasional
/// long-range edges back to the primary inputs (yielding realistic fan-out
/// on the inputs). Roughly half the fan-ins are drawn from the *frontier*
/// (gates no one reads yet), which keeps the dangling-sink set small so the
/// primary outputs — drawn from that frontier at the end — observe almost
/// all generated logic.
///
/// # Panics
///
/// Panics if `config.num_inputs` is zero or `config.num_outputs` exceeds the
/// total gate count.
pub fn generate(config: &GeneratorConfig) -> Circuit {
    assert!(config.num_inputs > 0, "circuits need at least one input");
    assert!(
        config.num_outputs <= config.num_inputs + config.num_logic,
        "more outputs requested than gates generated"
    );
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x9E37_79B9_7F4A_7C15);
    let mut builder = CircuitBuilder::new(config.name.clone());

    let mut nodes: Vec<GateId> = Vec::with_capacity(config.num_inputs + config.num_logic);
    // The frontier: nodes not yet referenced by any fan-in.
    let mut frontier: Vec<GateId> = Vec::new();
    let mut referenced: Vec<bool> = Vec::new();
    for i in 0..config.num_inputs {
        let id = builder
            .add_input(format!("i{i}"))
            .expect("generated input names are unique");
        nodes.push(id);
        frontier.push(id);
        referenced.push(false);
    }

    let mix = &config.mix;
    let total = mix.total();
    for g in 0..config.num_logic {
        let kind = {
            let mut r = rng.gen_range(0.0..total);
            let entries = [
                (GateKind::And, mix.and),
                (GateKind::Nand, mix.nand),
                (GateKind::Or, mix.or),
                (GateKind::Nor, mix.nor),
                (GateKind::Not, mix.not),
                (GateKind::Xor, mix.xor),
            ];
            let mut chosen = GateKind::Nand;
            for (kind, weight) in entries {
                if r < weight {
                    chosen = kind;
                    break;
                }
                r -= weight;
            }
            chosen
        };
        let arity = match kind {
            GateKind::Not => 1,
            GateKind::Xor => 2,
            _ => {
                if rng.gen_bool(config.three_input_prob) {
                    3
                } else {
                    2
                }
            }
        };
        let mut fanin: Vec<GateId> = Vec::with_capacity(arity);
        let mut guard = 0;
        while fanin.len() < arity {
            let src = if rng.gen_bool(0.5) {
                pop_frontier(&mut frontier, &referenced, &mut rng)
                    .unwrap_or_else(|| pick_source(&nodes, config, &mut rng))
            } else {
                pick_source(&nodes, config, &mut rng)
            };
            if !fanin.contains(&src) {
                fanin.push(src);
            }
            guard += 1;
            if guard > 64 {
                // Tiny circuits can exhaust distinct sources; fall back to a
                // linear scan for any unused node.
                for &candidate in &nodes {
                    if !fanin.contains(&candidate) {
                        fanin.push(candidate);
                        break;
                    }
                }
                break;
            }
        }
        // Degenerate case: fewer distinct nodes than the arity requires.
        let kind = if fanin.len() < 2 && !matches!(kind, GateKind::Not) {
            GateKind::Not
        } else {
            kind
        };
        if matches!(kind, GateKind::Not) {
            fanin.truncate(1);
        }
        let id = builder
            .add_gate(format!("g{g}"), kind, &fanin)
            .expect("generated gates are well-formed");
        for &f in &fanin {
            referenced[f.index()] = true;
        }
        nodes.push(id);
        frontier.push(id);
        referenced.push(false);
    }

    for id in choose_outputs(&nodes, &frontier, &referenced, config, &mut rng) {
        builder.mark_output(id);
    }
    builder.finish().expect("generator only builds DAGs")
}

/// Pops a random still-unreferenced node from the frontier (lazily dropping
/// entries that have been referenced since they were pushed).
fn pop_frontier(
    frontier: &mut Vec<GateId>,
    referenced: &[bool],
    rng: &mut StdRng,
) -> Option<GateId> {
    while !frontier.is_empty() {
        let i = rng.gen_range(0..frontier.len());
        let id = frontier.swap_remove(i);
        if !referenced[id.index()] {
            return Some(id);
        }
    }
    None
}

/// Picks a fan-in source with exponential look-back bias.
fn pick_source(nodes: &[GateId], config: &GeneratorConfig, rng: &mut StdRng) -> GateId {
    let n = nodes.len();
    // 10% of edges reach uniformly back (long-range / primary-input reuse).
    if rng.gen_bool(0.10) {
        return nodes[rng.gen_range(0..n)];
    }
    let mean = (config.locality * n as f64).max(2.0);
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    let back = (-mean * u.ln()) as usize;
    let idx = n - 1 - back.min(n - 1);
    nodes[idx]
}

/// Draws the primary outputs from the remaining frontier (the true sinks),
/// falling back to the most recent logic gates if the frontier is smaller
/// than the requested output count.
fn choose_outputs(
    nodes: &[GateId],
    frontier: &[GateId],
    referenced: &[bool],
    config: &GeneratorConfig,
    rng: &mut StdRng,
) -> Vec<GateId> {
    let mut sinks: Vec<GateId> = frontier
        .iter()
        .copied()
        .filter(|id| !referenced[id.index()] && id.index() >= config.num_inputs)
        .collect();
    sinks.sort();
    sinks.dedup();
    for i in (1..sinks.len()).rev() {
        let j = rng.gen_range(0..=i);
        sinks.swap(i, j);
    }
    let mut outputs: Vec<GateId> = sinks.into_iter().take(config.num_outputs).collect();
    if outputs.len() < config.num_outputs {
        for &id in nodes.iter().rev() {
            if outputs.len() == config.num_outputs {
                break;
            }
            if !outputs.contains(&id) {
                outputs.push(id);
            }
        }
    }
    outputs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::GeneratorConfig;
    use netlist::stats::circuit_stats;
    use netlist::topo::levelize;

    fn small_config() -> GeneratorConfig {
        GeneratorConfig::new("t", 8, 4, 60).with_seed(1)
    }

    #[test]
    fn shape_matches_config() {
        let c = generate(&small_config());
        assert_eq!(c.inputs().len(), 8);
        assert_eq!(c.outputs().len(), 4);
        assert_eq!(c.num_logic_gates(), 60);
        assert_eq!(c.keys().len(), 0);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&small_config());
        let b = generate(&small_config());
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&small_config());
        let b = generate(&small_config().with_seed(2));
        assert_ne!(a, b);
    }

    #[test]
    fn generated_circuit_has_depth() {
        let c = generate(&GeneratorConfig::new("t", 16, 8, 400).with_seed(3));
        let depth = levelize(&c).depth();
        assert!(depth >= 6, "expected realistic depth, got {depth}");
    }

    #[test]
    fn generated_circuit_simulates() {
        let c = generate(&small_config());
        let inputs: Vec<u64> = (0..8).map(|i| 0xDEAD_BEEF_u64.rotate_left(i)).collect();
        let outs = c.simulate(&inputs, &[]).unwrap();
        assert_eq!(outs.len(), 4);
    }

    #[test]
    fn bench_round_trip() {
        let c = generate(&small_config());
        let text = c.to_bench();
        let reparsed = Circuit::from_bench("t", &text).unwrap();
        assert_eq!(c, reparsed);
    }

    #[test]
    fn gate_mix_is_respected_roughly() {
        let c = generate(&GeneratorConfig::new("t", 32, 8, 2000).with_seed(5));
        let stats = circuit_stats(&c);
        // NAND should dominate with the default mix.
        let nand = stats.kind_fraction("nand");
        assert!(nand > 0.2, "nand fraction {nand}");
    }
}
