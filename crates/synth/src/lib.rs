//! Seeded synthetic combinational-circuit generator.
//!
//! The original ISCAS-85 benchmark files are a dataset this reproduction
//! does not redistribute (see `DESIGN.md` §4); instead this crate generates
//! random combinational DAGs that are *profile-matched* to each ISCAS-85
//! circuit — same primary input/output counts, similar logic-gate count,
//! a realistic gate-type mix, and locality-biased wiring that yields
//! ISCAS-like logic depth. Generation is fully deterministic in the seed.
//!
//! # Example
//!
//! ```
//! use synth::iscas;
//!
//! let c432 = iscas::circuit("c432", 7).expect("known profile");
//! assert_eq!(c432.inputs().len(), 36);
//! assert_eq!(c432.outputs().len(), 7);
//! // Same seed, same circuit.
//! assert_eq!(c432, iscas::circuit("c432", 7).unwrap());
//! ```

mod generator;
pub mod iscas;
mod profile;

pub use generator::generate;
pub use profile::{GateMix, GeneratorConfig};
