use std::fmt;

/// Relative frequencies of the generated gate kinds.
///
/// The defaults approximate the ISCAS-85 suite, which is dominated by
/// NAND/NOR/inverter logic with a sprinkling of AND/OR/XOR (the paper's
/// feature encoding recognizes exactly {AND, NOR, NOT, NAND, OR, XOR}).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateMix {
    /// Weight of 2..3-input AND gates.
    pub and: f64,
    /// Weight of 2..3-input NAND gates.
    pub nand: f64,
    /// Weight of 2..3-input OR gates.
    pub or: f64,
    /// Weight of 2..3-input NOR gates.
    pub nor: f64,
    /// Weight of inverters.
    pub not: f64,
    /// Weight of 2-input XOR gates.
    pub xor: f64,
}

impl Default for GateMix {
    fn default() -> Self {
        GateMix {
            and: 0.14,
            nand: 0.38,
            or: 0.12,
            nor: 0.12,
            not: 0.18,
            xor: 0.06,
        }
    }
}

impl GateMix {
    /// Sum of all weights (used for normalization).
    pub fn total(&self) -> f64 {
        self.and + self.nand + self.or + self.nor + self.not + self.xor
    }
}

/// Full parameterization of the synthetic generator.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorConfig {
    /// Circuit name.
    pub name: String,
    /// Number of primary inputs.
    pub num_inputs: usize,
    /// Number of primary outputs.
    pub num_outputs: usize,
    /// Number of logic gates (total gates = this + inputs).
    pub num_logic: usize,
    /// Gate-kind mix.
    pub mix: GateMix,
    /// Probability that a multi-input gate gets a third fan-in.
    pub three_input_prob: f64,
    /// Wiring locality: mean look-back distance (in gates) of a fan-in,
    /// as a fraction of the already-built circuit. Smaller values produce
    /// deeper circuits.
    pub locality: f64,
    /// RNG seed; identical configs with identical seeds generate identical
    /// circuits.
    pub seed: u64,
}

impl GeneratorConfig {
    /// A config with ISCAS-like defaults for the given shape.
    pub fn new(
        name: impl Into<String>,
        num_inputs: usize,
        num_outputs: usize,
        num_logic: usize,
    ) -> Self {
        GeneratorConfig {
            name: name.into(),
            num_inputs,
            num_outputs,
            num_logic,
            mix: GateMix::default(),
            three_input_prob: 0.15,
            locality: 0.12,
            seed: 0,
        }
    }

    /// Returns the config with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl fmt::Display for GeneratorConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} in / {} out / {} logic (seed {})",
            self.name, self.num_inputs, self.num_outputs, self.num_logic, self.seed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_mix_sums_to_one() {
        assert!((GateMix::default().total() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn with_seed_changes_only_seed() {
        let a = GeneratorConfig::new("t", 4, 2, 10);
        let b = a.clone().with_seed(99);
        assert_eq!(b.seed, 99);
        assert_eq!(a.num_logic, b.num_logic);
    }

    #[test]
    fn display_mentions_shape() {
        let c = GeneratorConfig::new("t", 4, 2, 10);
        assert!(c.to_string().contains("4 in / 2 out / 10 logic"));
    }
}
