//! AppSAT-style approximate attack (Shamsi et al., HOST'17).
//!
//! The exact SAT attack must exhaust *every* distinguishing input before it
//! terminates, which is exactly what makes SAT-hard schemes expensive. An
//! approximate attacker interleaves DIP constraints with random oracle
//! queries and settles for a key that is correct on (nearly) all sampled
//! inputs — usually recovering an exact key on traditionally locked
//! circuits in a fraction of the work.
//!
//! This module reproduces that attacker as an extension over the paper's
//! exact attack, useful for studying how runtime prediction transfers to a
//! different attack algorithm (the paper's challenge #1: attackers are
//! heterogeneous).

use crate::error::AttackError;
use crate::oracle::Oracle;
use crate::runtime::AttackRuntime;
use cnf::{encode_circuit_with, encode_miter, fix_vars, EncodeOptions};
use netlist::Circuit;
use obfuscate::Key;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sat::{SolveResult, Solver, SolverStats};
use std::time::Instant;

/// Parameters of one AppSAT run.
#[derive(Debug, Clone)]
pub struct AppSatConfig {
    /// DIP iterations between random-query rounds.
    pub dips_per_round: usize,
    /// Random oracle queries per reinforcement round.
    pub random_queries_per_round: usize,
    /// Consecutive all-correct rounds required to settle.
    pub settle_rounds: usize,
    /// Hard cap on rounds.
    pub max_rounds: usize,
    /// Total solver-work budget.
    pub work_budget: Option<u64>,
    /// Random-query seed.
    pub seed: u64,
}

impl Default for AppSatConfig {
    fn default() -> Self {
        AppSatConfig {
            dips_per_round: 4,
            random_queries_per_round: 32,
            settle_rounds: 2,
            max_rounds: 100,
            work_budget: None,
            seed: 0,
        }
    }
}

/// Outcome of an AppSAT run.
#[derive(Debug, Clone, PartialEq)]
pub struct AppSatResult {
    /// The recovered (possibly approximate) key, or `None` on budget abort.
    pub key: Option<Key>,
    /// Rounds executed.
    pub rounds: usize,
    /// True when the miter became UNSAT (the key is exactly correct, as in
    /// the exact attack); false when the attacker settled approximately.
    pub exact: bool,
    /// Fraction of the final round's random queries the key got wrong
    /// (0.0 for an exact or fully settled key).
    pub error_estimate: f64,
    /// DIPs consumed in total.
    pub dips: usize,
    /// Solver work counters.
    pub solver_stats: SolverStats,
    /// Runtime under both measures.
    pub runtime: AttackRuntime,
}

/// Runs the AppSAT loop on `locked` against `oracle`.
///
/// # Errors
///
/// Same conditions as [`attack`](crate::attack): circuits without keys or
/// outputs are rejected, and an oracle inconsistent with the netlist
/// surfaces as [`AttackError::OracleInconsistent`].
pub fn appsat(
    locked: &Circuit,
    oracle: &mut dyn Oracle,
    config: &AppSatConfig,
) -> Result<AppSatResult, AttackError> {
    if locked.keys().is_empty() {
        return Err(AttackError::NothingToAttack);
    }
    if locked.outputs().is_empty() {
        return Err(AttackError::NoOutputs);
    }
    let start = Instant::now();
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xA995_A700);
    let mut solver = Solver::new();
    let miter = encode_miter(locked, &mut solver);
    let num_inputs = locked.inputs().len();

    let add_io_constraint = |solver: &mut Solver, inputs: &[bool], outputs: &[bool]| {
        for key_vars in [&miter.key1, &miter.key2] {
            let enc = encode_circuit_with(
                locked,
                solver,
                EncodeOptions {
                    input_vars: None,
                    key_vars: Some(key_vars.clone()),
                },
            );
            fix_vars(solver, &enc.input_vars(locked), inputs);
            fix_vars(solver, &enc.output_vars(locked), outputs);
        }
    };

    let mut dips = 0usize;
    let mut settled = 0usize;
    let mut error_estimate = 1.0;
    let finish = |solver: &mut Solver,
                  key: Option<Key>,
                  rounds: usize,
                  exact: bool,
                  error_estimate: f64,
                  dips: usize,
                  start: Instant| {
        let solver_stats = *solver.stats();
        Ok(AppSatResult {
            key,
            rounds,
            exact,
            error_estimate,
            dips,
            solver_stats,
            runtime: AttackRuntime::new(&solver_stats, start.elapsed()),
        })
    };

    for round in 0..config.max_rounds {
        if let Some(budget) = config.work_budget {
            if solver.stats().work() >= budget {
                return finish(&mut solver, None, round, false, error_estimate, dips, start);
            }
        }
        // Phase 1: a few exact DIP iterations.
        for _ in 0..config.dips_per_round {
            match solver.solve_with_assumptions(&[miter.diff_lit()]) {
                SolveResult::Unknown => {
                    return finish(&mut solver, None, round, false, error_estimate, dips, start)
                }
                SolveResult::Unsat => {
                    // Exact convergence — extract the key like the exact attack.
                    return match solver.solve() {
                        SolveResult::Sat(model) => {
                            let key: Key = miter.key1.iter().map(|&v| model.value(v)).collect();
                            finish(&mut solver, Some(key), round + 1, true, 0.0, dips, start)
                        }
                        SolveResult::Unsat => Err(AttackError::OracleInconsistent),
                        SolveResult::Unknown => {
                            finish(&mut solver, None, round, false, error_estimate, dips, start)
                        }
                    };
                }
                SolveResult::Sat(model) => {
                    let dip: Vec<bool> = miter.inputs.iter().map(|&v| model.value(v)).collect();
                    let response = oracle.query(&dip);
                    add_io_constraint(&mut solver, &dip, &response);
                    dips += 1;
                }
            }
        }
        // Phase 2: extract the current key candidate.
        let candidate: Key = match solver.solve() {
            SolveResult::Sat(model) => miter.key1.iter().map(|&v| model.value(v)).collect(),
            SolveResult::Unsat => return Err(AttackError::OracleInconsistent),
            SolveResult::Unknown => {
                return finish(&mut solver, None, round, false, error_estimate, dips, start)
            }
        };
        // Phase 3: random-query reinforcement.
        let mut mismatches = 0usize;
        for _ in 0..config.random_queries_per_round {
            let inputs: Vec<bool> = (0..num_inputs).map(|_| rng.gen()).collect();
            let truth = oracle.query(&inputs);
            let predicted = locked
                .simulate_bool(&inputs, candidate.bits())
                .expect("candidate key has the right width");
            if predicted != truth {
                mismatches += 1;
                add_io_constraint(&mut solver, &inputs, &truth);
            }
        }
        error_estimate = mismatches as f64 / config.random_queries_per_round.max(1) as f64;
        if mismatches == 0 {
            settled += 1;
            if settled >= config.settle_rounds {
                return finish(
                    &mut solver,
                    Some(candidate),
                    round + 1,
                    false,
                    0.0,
                    dips,
                    start,
                );
            }
        } else {
            settled = 0;
        }
    }
    finish(
        &mut solver,
        None,
        config.max_rounds,
        false,
        error_estimate,
        dips,
        start,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::SimOracle;
    use obfuscate::{lock_random, SchemeKind};
    use synth::GeneratorConfig;

    fn run(scheme: SchemeKind, gates: usize) -> (obfuscate::LockedCircuit, AppSatResult) {
        let base = synth::generate(&GeneratorConfig::new("appsat", 12, 6, 120).with_seed(3));
        let locked = lock_random(&base, scheme, gates, 7).expect("lockable");
        let mut oracle = SimOracle::new(locked.original.clone());
        let result =
            appsat(&locked.locked, &mut oracle, &AppSatConfig::default()).expect("appsat runs");
        (locked, result)
    }

    #[test]
    fn appsat_recovers_functionally_correct_keys() {
        for scheme in [SchemeKind::XorLock, SchemeKind::LutLock { lut_size: 3 }] {
            let (locked, result) = run(scheme, 4);
            let key = result.key.as_ref().expect("appsat settles");
            assert!(
                locked.verify_key(key).expect("verifies"),
                "{scheme} exact={} err={}",
                result.exact,
                result.error_estimate
            );
        }
    }

    #[test]
    fn appsat_uses_no_more_dips_than_exact_attack() {
        let (locked, approx) = run(SchemeKind::LutLock { lut_size: 4 }, 6);
        let exact = crate::attack_locked(&locked, &crate::AttackConfig::default())
            .expect("exact attack runs");
        assert!(
            approx.dips <= exact.iterations + 8,
            "appsat {} DIPs vs exact {}",
            approx.dips,
            exact.iterations
        );
    }

    #[test]
    fn budget_aborts_cleanly() {
        let (_, result) = {
            let base = synth::generate(&GeneratorConfig::new("appsat", 12, 6, 120).with_seed(3));
            let locked =
                lock_random(&base, SchemeKind::LutLock { lut_size: 4 }, 10, 7).expect("lockable");
            let mut oracle = SimOracle::new(locked.original.clone());
            let config = AppSatConfig {
                work_budget: Some(1),
                ..AppSatConfig::default()
            };
            (
                locked.clone(),
                appsat(&locked.locked, &mut oracle, &config).expect("appsat runs"),
            )
        };
        assert!(result.key.is_none());
        // The budget is only checked at round boundaries, so at most one
        // round runs before the abort.
        assert!(result.rounds <= 1);
    }

    #[test]
    fn rejects_unkeyed_circuits() {
        let mut oracle = SimOracle::new(netlist::c17());
        let err = appsat(&netlist::c17(), &mut oracle, &AppSatConfig::default()).unwrap_err();
        assert_eq!(err, AttackError::NothingToAttack);
    }
}
