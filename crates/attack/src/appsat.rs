//! AppSAT-style approximate attack (Shamsi et al., HOST'17).
//!
//! The exact SAT attack must exhaust *every* distinguishing input before it
//! terminates, which is exactly what makes SAT-hard schemes expensive. An
//! approximate attacker interleaves DIP constraints with random oracle
//! queries and settles for a key that is correct on (nearly) all sampled
//! inputs — usually recovering an exact key on traditionally locked
//! circuits in a fraction of the work.
//!
//! This module reproduces that attacker as an extension over the paper's
//! exact attack, useful for studying how runtime prediction transfers to a
//! different attack algorithm (the paper's challenge #1: attackers are
//! heterogeneous).
//!
//! Resource accounting mirrors [`attack`](crate::attack): the deterministic
//! work budget yields [`AppSatOutcome::BudgetExceeded`] (a reproducible,
//! censored measurement), while wall-clock deadlines yield
//! [`AppSatOutcome::TimedOut`] naming the expired bound — a deadline
//! expiring mid-iteration is never misreported as budget exhaustion, which
//! matters on SAT-resilient (Anti-SAT) instances where both bounds are
//! routinely armed at once.

use crate::dip::ExpiredDeadline;
use crate::error::AttackError;
use crate::oracle::Oracle;
use crate::runtime::AttackRuntime;
use cnf::{encode_circuit_with, encode_miter, fix_vars, EncodeOptions};
use netlist::Circuit;
use obfuscate::Key;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sat::{SolveResult, Solver, SolverStats};
use std::time::{Duration, Instant};

/// Parameters of one AppSAT run.
#[derive(Debug, Clone)]
pub struct AppSatConfig {
    /// DIP iterations between random-query rounds.
    pub dips_per_round: usize,
    /// Random oracle queries per reinforcement round.
    pub random_queries_per_round: usize,
    /// Consecutive all-correct rounds required to settle.
    pub settle_rounds: usize,
    /// Hard cap on rounds.
    pub max_rounds: usize,
    /// Total solver-work budget (deterministic; exhausting it is a
    /// reproducible, censored measurement).
    pub work_budget: Option<u64>,
    /// Wall-clock bound on the whole run (machine-dependent; expiring it is
    /// a timeout, never budget exhaustion).
    pub deadline: Option<Duration>,
    /// Wall-clock bound on each individual solver call.
    pub per_query_deadline: Option<Duration>,
    /// Random-query seed.
    pub seed: u64,
}

impl Default for AppSatConfig {
    fn default() -> Self {
        AppSatConfig {
            dips_per_round: 4,
            random_queries_per_round: 32,
            settle_rounds: 2,
            max_rounds: 100,
            work_budget: None,
            deadline: None,
            per_query_deadline: None,
            seed: 0,
        }
    }
}

/// How an AppSAT run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AppSatOutcome {
    /// The miter became UNSAT — the key is exactly correct.
    ExactKey,
    /// The required number of all-correct reinforcement rounds passed; the
    /// key is approximate but matched every sampled input.
    Settled,
    /// The round cap was reached without settling.
    RoundLimit,
    /// The deterministic work budget ran out first.
    BudgetExceeded,
    /// A wall-clock bound expired — the payload names which one.
    TimedOut(ExpiredDeadline),
}

/// Outcome of an AppSAT run.
#[derive(Debug, Clone, PartialEq)]
pub struct AppSatResult {
    /// The recovered (possibly approximate) key, or `None` on a budget or
    /// deadline abort.
    pub key: Option<Key>,
    /// Terminal state of the run.
    pub outcome: AppSatOutcome,
    /// Rounds executed.
    pub rounds: usize,
    /// True when the miter became UNSAT (the key is exactly correct, as in
    /// the exact attack); false when the attacker settled approximately.
    pub exact: bool,
    /// Fraction of the final round's random queries the key got wrong
    /// (0.0 for an exact or fully settled key).
    pub error_estimate: f64,
    /// DIPs consumed in total.
    pub dips: usize,
    /// Solver work counters.
    pub solver_stats: SolverStats,
    /// Runtime under both measures.
    pub runtime: AttackRuntime,
}

/// Runs the AppSAT loop on `locked` against `oracle`.
///
/// # Errors
///
/// Same conditions as [`attack`](crate::attack): circuits without keys or
/// outputs are rejected, and an oracle inconsistent with the netlist
/// surfaces as [`AttackError::OracleInconsistent`].
pub fn appsat(
    locked: &Circuit,
    oracle: &mut dyn Oracle,
    config: &AppSatConfig,
) -> Result<AppSatResult, AttackError> {
    if locked.keys().is_empty() {
        return Err(AttackError::NothingToAttack);
    }
    if locked.outputs().is_empty() {
        return Err(AttackError::NoOutputs);
    }
    let start = Instant::now();
    let attack_deadline = config.deadline.map(|d| start + d);
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xA995_A700);
    let mut solver = Solver::new();
    let miter = encode_miter(locked, &mut solver);
    let num_inputs = locked.inputs().len();

    // The deadline for the next solver call: the whole-run deadline or the
    // per-query deadline, whichever falls first (same rule as the exact
    // attack's DIP loop).
    let query_deadline = |attack_deadline: Option<Instant>| -> Option<Instant> {
        let per_query = config.per_query_deadline.map(|d| Instant::now() + d);
        match (attack_deadline, per_query) {
            (Some(a), Some(q)) => Some(a.min(q)),
            (a, q) => a.or(q),
        }
    };
    // Classifies a `SolveResult::Unknown`: past a wall-clock deadline it was
    // a timeout (the whole-run bound wins attribution when both expired),
    // otherwise only the deterministic budget can explain the abort.
    let classify_unknown =
        |attack_deadline: Option<Instant>, solve_deadline: Option<Instant>| -> AppSatOutcome {
            let now = Instant::now();
            if attack_deadline.is_some_and(|d| now >= d) {
                AppSatOutcome::TimedOut(ExpiredDeadline::Attack)
            } else if solve_deadline.is_some_and(|d| now >= d) {
                AppSatOutcome::TimedOut(ExpiredDeadline::PerQuery)
            } else {
                AppSatOutcome::BudgetExceeded
            }
        };

    let add_io_constraint = |solver: &mut Solver, inputs: &[bool], outputs: &[bool]| {
        for key_vars in [&miter.key1, &miter.key2] {
            let enc = encode_circuit_with(
                locked,
                solver,
                EncodeOptions {
                    input_vars: None,
                    key_vars: Some(key_vars.clone()),
                },
            );
            fix_vars(solver, &enc.input_vars(locked), inputs);
            fix_vars(solver, &enc.output_vars(locked), outputs);
        }
    };

    let mut dips = 0usize;
    let mut settled = 0usize;
    let mut error_estimate = 1.0;
    let finish = |solver: &mut Solver,
                  key: Option<Key>,
                  outcome: AppSatOutcome,
                  rounds: usize,
                  error_estimate: f64,
                  dips: usize,
                  start: Instant| {
        let solver_stats = *solver.stats();
        let exact = outcome == AppSatOutcome::ExactKey;
        Ok(AppSatResult {
            key,
            outcome,
            rounds,
            exact,
            error_estimate,
            dips,
            solver_stats,
            runtime: AttackRuntime::new(&solver_stats, start.elapsed()),
        })
    };

    for round in 0..config.max_rounds {
        // Deadline before budget: when both bounds have tripped by a round
        // boundary, the wall clock is the reason the run must stop *now*,
        // and reporting it as budget exhaustion would let a machine-speed
        // artifact masquerade as a reproducible censored label.
        if attack_deadline.is_some_and(|d| Instant::now() >= d) {
            let outcome = AppSatOutcome::TimedOut(ExpiredDeadline::Attack);
            return finish(
                &mut solver,
                None,
                outcome,
                round,
                error_estimate,
                dips,
                start,
            );
        }
        if let Some(budget) = config.work_budget {
            if solver.stats().work() >= budget {
                let outcome = AppSatOutcome::BudgetExceeded;
                return finish(
                    &mut solver,
                    None,
                    outcome,
                    round,
                    error_estimate,
                    dips,
                    start,
                );
            }
        }
        // Phase 1: a few exact DIP iterations.
        for _ in 0..config.dips_per_round {
            let deadline = query_deadline(attack_deadline);
            solver.set_deadline(deadline);
            match solver.solve_with_assumptions(&[miter.diff_lit()]) {
                SolveResult::Unknown => {
                    let outcome = classify_unknown(attack_deadline, deadline);
                    return finish(
                        &mut solver,
                        None,
                        outcome,
                        round,
                        error_estimate,
                        dips,
                        start,
                    );
                }
                SolveResult::Unsat => {
                    // Exact convergence — extract the key like the exact
                    // attack. The extraction solve stays under the whole-run
                    // deadline only; it is the last call and must not be
                    // starved by an earlier slow query.
                    solver.set_deadline(attack_deadline);
                    return match solver.solve() {
                        SolveResult::Sat(model) => {
                            let key: Key = miter.key1.iter().map(|&v| model.value(v)).collect();
                            let outcome = AppSatOutcome::ExactKey;
                            finish(&mut solver, Some(key), outcome, round + 1, 0.0, dips, start)
                        }
                        SolveResult::Unsat => Err(AttackError::OracleInconsistent),
                        SolveResult::Unknown => {
                            let outcome = classify_unknown(attack_deadline, None);
                            finish(
                                &mut solver,
                                None,
                                outcome,
                                round,
                                error_estimate,
                                dips,
                                start,
                            )
                        }
                    };
                }
                SolveResult::Sat(model) => {
                    let dip: Vec<bool> = miter.inputs.iter().map(|&v| model.value(v)).collect();
                    let response = oracle.query(&dip);
                    add_io_constraint(&mut solver, &dip, &response);
                    dips += 1;
                }
            }
        }
        // Phase 2: extract the current key candidate.
        let deadline = query_deadline(attack_deadline);
        solver.set_deadline(deadline);
        let candidate: Key = match solver.solve() {
            SolveResult::Sat(model) => miter.key1.iter().map(|&v| model.value(v)).collect(),
            SolveResult::Unsat => return Err(AttackError::OracleInconsistent),
            SolveResult::Unknown => {
                let outcome = classify_unknown(attack_deadline, deadline);
                return finish(
                    &mut solver,
                    None,
                    outcome,
                    round,
                    error_estimate,
                    dips,
                    start,
                );
            }
        };
        // Phase 3: random-query reinforcement.
        let mut mismatches = 0usize;
        for _ in 0..config.random_queries_per_round {
            let inputs: Vec<bool> = (0..num_inputs).map(|_| rng.gen()).collect();
            let truth = oracle.query(&inputs);
            let predicted = locked
                .simulate_bool(&inputs, candidate.bits())
                .expect("candidate key has the right width");
            if predicted != truth {
                mismatches += 1;
                add_io_constraint(&mut solver, &inputs, &truth);
            }
        }
        error_estimate = mismatches as f64 / config.random_queries_per_round.max(1) as f64;
        if mismatches == 0 {
            settled += 1;
            if settled >= config.settle_rounds {
                let outcome = AppSatOutcome::Settled;
                return finish(
                    &mut solver,
                    Some(candidate),
                    outcome,
                    round + 1,
                    0.0,
                    dips,
                    start,
                );
            }
        } else {
            settled = 0;
        }
    }
    finish(
        &mut solver,
        None,
        AppSatOutcome::RoundLimit,
        config.max_rounds,
        error_estimate,
        dips,
        start,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::SimOracle;
    use obfuscate::{lock_random, SchemeKind};
    use synth::GeneratorConfig;

    fn run(scheme: SchemeKind, gates: usize) -> (obfuscate::LockedCircuit, AppSatResult) {
        let base = synth::generate(&GeneratorConfig::new("appsat", 12, 6, 120).with_seed(3));
        let locked = lock_random(&base, scheme, gates, 7).expect("lockable");
        let mut oracle = SimOracle::new(locked.original.clone());
        let result =
            appsat(&locked.locked, &mut oracle, &AppSatConfig::default()).expect("appsat runs");
        (locked, result)
    }

    fn anti_sat_instance(width: usize) -> obfuscate::LockedCircuit {
        let base = synth::generate(&GeneratorConfig::new("appsat", 16, 8, 150).with_seed(2));
        lock_random(&base, SchemeKind::AntiSat { key_width: width }, 1, 3).expect("lockable")
    }

    #[test]
    fn appsat_recovers_functionally_correct_keys() {
        for scheme in [SchemeKind::XorLock, SchemeKind::LutLock { lut_size: 3 }] {
            let (locked, result) = run(scheme, 4);
            let key = result.key.as_ref().expect("appsat settles");
            assert!(
                locked.verify_key(key).expect("verifies"),
                "{scheme} exact={} err={}",
                result.exact,
                result.error_estimate
            );
            assert!(matches!(
                result.outcome,
                AppSatOutcome::ExactKey | AppSatOutcome::Settled
            ));
        }
    }

    #[test]
    fn appsat_uses_no_more_dips_than_exact_attack() {
        let (locked, approx) = run(SchemeKind::LutLock { lut_size: 4 }, 6);
        let exact = crate::attack_locked(&locked, &crate::AttackConfig::default())
            .expect("exact attack runs");
        assert!(
            approx.dips <= exact.iterations + 8,
            "appsat {} DIPs vs exact {}",
            approx.dips,
            exact.iterations
        );
    }

    #[test]
    fn budget_aborts_cleanly() {
        let (_, result) = {
            let base = synth::generate(&GeneratorConfig::new("appsat", 12, 6, 120).with_seed(3));
            let locked =
                lock_random(&base, SchemeKind::LutLock { lut_size: 4 }, 10, 7).expect("lockable");
            let mut oracle = SimOracle::new(locked.original.clone());
            let config = AppSatConfig {
                work_budget: Some(1),
                ..AppSatConfig::default()
            };
            (
                locked.clone(),
                appsat(&locked.locked, &mut oracle, &config).expect("appsat runs"),
            )
        };
        assert!(result.key.is_none());
        assert_eq!(result.outcome, AppSatOutcome::BudgetExceeded);
        // The budget is only checked at round boundaries, so at most one
        // round runs before the abort.
        assert!(result.rounds <= 1);
    }

    #[test]
    fn anti_sat_deadline_times_out_not_budget() {
        // Regression (issue 9): on a SAT-resilient instance with *both* a
        // work budget and an expired deadline armed, the run must surface as
        // a timeout naming the bound — never as budget exhaustion.
        let locked = anti_sat_instance(8);
        let mut oracle = SimOracle::new(locked.original.clone());
        let config = AppSatConfig {
            work_budget: Some(1),
            deadline: Some(Duration::ZERO),
            ..AppSatConfig::default()
        };
        let result = appsat(&locked.locked, &mut oracle, &config).expect("appsat runs");
        assert_eq!(
            result.outcome,
            AppSatOutcome::TimedOut(ExpiredDeadline::Attack)
        );
        assert!(result.key.is_none());
        if let AppSatOutcome::TimedOut(bound) = result.outcome {
            assert_eq!(bound.describe(), "deadline");
        }
    }

    #[test]
    fn anti_sat_deadline_mid_iteration_times_out() {
        // A width-10 Anti-SAT block needs ~1024 DIPs; a few-ms deadline
        // expires mid-DIP-iteration, inside the solver's wall-clock check,
        // and must still be attributed to the attack deadline even though an
        // (unreached) work budget is armed. Settling and the round cap are
        // pushed out of reach so the timeout is the only possible ending —
        // on Anti-SAT a disagreeing wrong key passes random reinforcement
        // almost surely, so a reachable settle threshold would race the
        // deadline on fast machines.
        let locked = anti_sat_instance(10);
        let mut oracle = SimOracle::new(locked.original.clone());
        let config = AppSatConfig {
            work_budget: Some(u64::MAX),
            deadline: Some(Duration::from_millis(5)),
            settle_rounds: usize::MAX,
            max_rounds: usize::MAX,
            ..AppSatConfig::default()
        };
        let result = appsat(&locked.locked, &mut oracle, &config).expect("appsat runs");
        assert_eq!(
            result.outcome,
            AppSatOutcome::TimedOut(ExpiredDeadline::Attack),
            "rounds={} dips={}",
            result.rounds,
            result.dips
        );
    }

    #[test]
    fn per_query_deadline_is_attributed_to_the_query_bound() {
        let locked = anti_sat_instance(8);
        let mut oracle = SimOracle::new(locked.original.clone());
        let config = AppSatConfig {
            per_query_deadline: Some(Duration::ZERO),
            ..AppSatConfig::default()
        };
        let result = appsat(&locked.locked, &mut oracle, &config).expect("appsat runs");
        assert_eq!(
            result.outcome,
            AppSatOutcome::TimedOut(ExpiredDeadline::PerQuery)
        );
    }

    #[test]
    fn generous_deadline_leaves_result_untouched() {
        let (locked, unlimited) = run(SchemeKind::XorLock, 4);
        let mut oracle = SimOracle::new(locked.original.clone());
        let config = AppSatConfig {
            deadline: Some(Duration::from_secs(600)),
            ..AppSatConfig::default()
        };
        let bounded = appsat(&locked.locked, &mut oracle, &config).expect("appsat runs");
        assert_eq!(unlimited.outcome, bounded.outcome);
        assert_eq!(unlimited.dips, bounded.dips);
    }

    #[test]
    fn rejects_unkeyed_circuits() {
        let mut oracle = SimOracle::new(netlist::c17());
        let err = appsat(&netlist::c17(), &mut oracle, &AppSatConfig::default()).unwrap_err();
        assert_eq!(err, AttackError::NothingToAttack);
    }
}
