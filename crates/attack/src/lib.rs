//! Oracle-guided SAT attack on locked circuits (Subramanyan et al., HOST'15).
//!
//! The attack owns an activated chip (the *oracle*) and the locked netlist.
//! It repeatedly solves a double-keyed miter for a *distinguishing input
//! pattern* (DIP) — an input on which two key candidates disagree — queries
//! the oracle on that DIP, and constrains both key copies to reproduce the
//! observed output. When no DIP remains, any key satisfying the accumulated
//! constraints is functionally correct.
//!
//! Besides wall-clock time the attack reports a deterministic *solver-work*
//! runtime measure (see [`AttackRuntime`]), which is what the dataset
//! pipeline trains ICNet on: it is machine-independent and reproducible,
//! while preserving the paper's key property that runtime varies steeply
//! with the number and position of obfuscated gates.
//!
//! # Example
//!
//! ```
//! use attack::{attack_locked, AttackConfig, AttackOutcome};
//! use obfuscate::{lock_random, SchemeKind};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let locked = lock_random(&netlist::c17(), SchemeKind::XorLock, 3, 7)?;
//! let result = attack_locked(&locked, &AttackConfig::default())?;
//! match &result.outcome {
//!     AttackOutcome::KeyRecovered(key) => assert!(locked.verify_key(key)?),
//!     other => panic!("attack should finish on c17, got {other:?}"),
//! }
//! # Ok(())
//! # }
//! ```

mod appsat;
mod dip;
mod error;
mod oracle;
mod runtime;

pub use appsat::{appsat, AppSatConfig, AppSatOutcome, AppSatResult};
pub use dip::{
    attack, attack_locked, AttackConfig, AttackOutcome, AttackResult, CancelToken, ExpiredDeadline,
};
pub use error::AttackError;
pub use oracle::{Oracle, SimOracle};
pub use runtime::{AttackRuntime, RuntimeMeasure, WORK_UNITS_PER_SECOND};
