use netlist::Circuit;

/// A black-box activated chip: apply an input pattern, observe the outputs.
///
/// The attack only ever sees input/output behaviour through this trait, so a
/// hardware-in-the-loop oracle could be substituted for [`SimOracle`].
pub trait Oracle {
    /// Applies one input pattern and returns the output values.
    fn query(&mut self, inputs: &[bool]) -> Vec<bool>;

    /// Number of queries served so far.
    fn num_queries(&self) -> usize;
}

/// Oracle backed by simulating the original (unlocked) circuit — the
/// standard attack-evaluation setup, standing in for a real activated IC.
#[derive(Debug, Clone)]
pub struct SimOracle {
    circuit: Circuit,
    queries: usize,
}

impl SimOracle {
    /// Wraps an unlocked circuit as an oracle.
    ///
    /// # Panics
    ///
    /// Panics if the circuit still has key inputs (an oracle is an
    /// *activated* chip).
    pub fn new(circuit: Circuit) -> Self {
        assert!(
            circuit.keys().is_empty(),
            "oracle circuits must be activated (no key inputs)"
        );
        SimOracle {
            circuit,
            queries: 0,
        }
    }

    /// The wrapped circuit.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }
}

impl Oracle for SimOracle {
    fn query(&mut self, inputs: &[bool]) -> Vec<bool> {
        self.queries += 1;
        self.circuit
            .simulate_bool(inputs, &[])
            .expect("oracle query width matches circuit")
    }

    fn num_queries(&self) -> usize {
        self.queries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_oracle_counts_queries() {
        let mut oracle = SimOracle::new(netlist::c17());
        assert_eq!(oracle.num_queries(), 0);
        let out = oracle.query(&[true, true, true, true, true]);
        assert_eq!(out.len(), 2);
        assert_eq!(oracle.num_queries(), 1);
    }

    #[test]
    #[should_panic(expected = "activated")]
    fn keyed_circuit_rejected() {
        let locked =
            obfuscate::lock_random(&netlist::c17(), obfuscate::SchemeKind::XorLock, 1, 0).unwrap();
        let _ = SimOracle::new(locked.locked);
    }
}
