//! The DIP (distinguishing input pattern) loop.

use crate::error::AttackError;
use crate::oracle::{Oracle, SimOracle};
use crate::runtime::AttackRuntime;
use cnf::{encode_circuit_with, encode_miter, fix_vars, EncodeOptions};
use netlist::Circuit;
use obfuscate::{Key, LockedCircuit};
use sat::{SolveResult, Solver, SolverStats};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cheap, cloneable cooperative-cancellation flag.
///
/// Clones share one flag, so a coordinator thread can hand copies to worker
/// threads and cancel every in-flight attack at once (the DIP loop polls the
/// flag between solver calls, exactly like its work-budget check). A
/// cancelled attack ends with [`AttackOutcome::Cancelled`], distinct from
/// every resource-exhaustion outcome so supervisors can tell an operator
/// shutdown from an instance that is genuinely too hard.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    /// Flags of ancestor tokens; cancellation flows down through them but
    /// never back up.
    parents: Vec<Arc<AtomicBool>>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Raises the flag; every attack polling a clone stops at its next
    /// iteration boundary. Children observe the cancellation too; parents
    /// (see [`CancelToken::child`]) do not.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether [`CancelToken::cancel`] has been called on any clone of this
    /// token or of an ancestor it was derived from.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed) || self.parents.iter().any(|p| p.load(Ordering::Relaxed))
    }

    /// Derives a child token: cancelling `self` cancels the child, but
    /// cancelling the child leaves `self` untouched. This lets a sweep abort
    /// its own workers on an internal error without tripping an
    /// operator-level interrupt token it was handed.
    pub fn child(&self) -> CancelToken {
        let mut parents = self.parents.clone();
        parents.push(Arc::clone(&self.flag));
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            parents,
        }
    }
}

/// Resource limits and options for one attack run.
#[derive(Debug, Clone, Default)]
pub struct AttackConfig {
    /// Abort once total solver work (see [`sat::SolverStats::work`]) exceeds
    /// this bound. `None` = run to completion.
    pub work_budget: Option<u64>,
    /// Abort after this many DIP iterations. `None` = unlimited.
    pub max_iterations: Option<usize>,
    /// Conflict cap per individual solver call (guards against a single
    /// pathological query). `None` = unlimited.
    pub conflicts_per_solve: Option<u64>,
    /// Wall-clock bound on the whole attack run. Unlike the deterministic
    /// work budget this actually bounds *time*: SAT-hard structures blow
    /// past any conflict estimate, and a dataset sweep must terminate.
    /// `None` = no deadline.
    pub deadline: Option<Duration>,
    /// Wall-clock bound on each individual solver call (guards against one
    /// pathological query eating the whole deadline). `None` = unlimited.
    pub per_query_deadline: Option<Duration>,
    /// Logical-byte cap on the attack solver's clause storage (see
    /// [`sat::Solver::set_memory_budget`]). Deterministic and
    /// machine-independent, but it rides in the *supervision* fingerprint,
    /// not the instance key: an exceeded budget quarantines rather than
    /// labels, and raising it re-attacks only the quarantined instances —
    /// the same contract as deadlines. `None` = uncapped.
    pub mem_budget: Option<u64>,
    /// Record every DIP found (costs memory on long attacks).
    pub record_dips: bool,
    /// Cross-thread cancellation flag, polled once per DIP iteration.
    /// `None` = not cancellable.
    pub cancel: Option<CancelToken>,
    /// Watchdog pulse forwarded to the solver (beaten at its deadline-poll
    /// sites) and beaten once per DIP iteration, so a stall monitor can see
    /// progress the polled deadlines cannot. `None` = unmonitored.
    pub heartbeat: Option<budget::Heartbeat>,
}

impl AttackConfig {
    /// A config with a total work budget.
    pub fn with_work_budget(budget: u64) -> Self {
        AttackConfig {
            work_budget: Some(budget),
            ..AttackConfig::default()
        }
    }

    /// This config with `token` installed as its cancellation flag.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// This config with a wall-clock deadline for the whole attack.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Whether an installed cancellation token has been raised.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
    }
}

/// Which wall-clock bound expired when an attack ends as
/// [`AttackOutcome::TimedOut`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExpiredDeadline {
    /// The whole-attack [`AttackConfig::deadline`].
    Attack,
    /// The [`AttackConfig::per_query_deadline`] of one solver call.
    PerQuery,
}

impl ExpiredDeadline {
    /// Flag-style name of the expired bound ("deadline" /
    /// "per-query deadline"), for diagnostics.
    pub fn describe(&self) -> &'static str {
        match self {
            ExpiredDeadline::Attack => "deadline",
            ExpiredDeadline::PerQuery => "per-query deadline",
        }
    }
}

/// How an attack run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttackOutcome {
    /// The DIP loop converged and this key reproduces the oracle on all
    /// inputs.
    KeyRecovered(Key),
    /// A deterministic resource limit from [`AttackConfig`] (work budget,
    /// iteration cap, or per-solve conflict cap) was hit first. The partial
    /// runtime is a reproducible lower bound, so the instance is still
    /// usable as a censored label.
    BudgetExceeded,
    /// The wall-clock [`AttackConfig::deadline`] or
    /// [`AttackConfig::per_query_deadline`] expired — the payload says
    /// which. The partial runtime is machine-dependent, so supervisors
    /// quarantine these instead of labeling them.
    TimedOut(ExpiredDeadline),
    /// The logical-byte [`AttackConfig::mem_budget`] stayed exhausted even
    /// after the solver's staged learnt-DB degradation. Deterministic, but
    /// the partial runtime reflects a degraded search, so supervisors
    /// quarantine (a raised budget re-attacks) rather than label.
    MemoryExceeded,
    /// The attack was stopped through its [`CancelToken`] — an operator or
    /// coordinator decision, not a property of the instance. Any partial
    /// result must be discarded.
    Cancelled,
}

/// Everything measured during one attack run.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackResult {
    /// Terminal state of the run.
    pub outcome: AttackOutcome,
    /// Number of DIPs found (= SAT-attack iterations, the quantity the
    /// paper's Section II-A ties to attack effort).
    pub iterations: usize,
    /// Oracle queries served.
    pub oracle_queries: usize,
    /// Work counters of the attack's solver.
    pub solver_stats: SolverStats,
    /// Deterministic + wall-clock runtime of the run.
    pub runtime: AttackRuntime,
    /// Peak logical bytes the attack solver's storage reached (see
    /// [`budget::MemoryMeter`]) — the per-instance `mem.highwater` figure.
    pub peak_logical_bytes: u64,
    /// The DIPs, if [`AttackConfig::record_dips`] was set.
    pub dips: Vec<Vec<bool>>,
}

impl AttackResult {
    /// The recovered key, if the attack finished.
    pub fn key(&self) -> Option<&Key> {
        match &self.outcome {
            AttackOutcome::KeyRecovered(k) => Some(k),
            _ => None,
        }
    }
}

/// Runs the oracle-guided SAT attack on `locked` using `oracle` as the
/// activated chip.
///
/// # Errors
///
/// Returns [`AttackError::NothingToAttack`] / [`AttackError::NoOutputs`] for
/// circuits without keys or outputs, and
/// [`AttackError::OracleInconsistent`] when the oracle's responses cannot be
/// produced by any key of the locked netlist.
pub fn attack(
    locked: &Circuit,
    oracle: &mut dyn Oracle,
    config: &AttackConfig,
) -> Result<AttackResult, AttackError> {
    if locked.keys().is_empty() {
        return Err(AttackError::NothingToAttack);
    }
    if locked.outputs().is_empty() {
        return Err(AttackError::NoOutputs);
    }
    let start = Instant::now();
    let attack_deadline = config.deadline.map(|d| start + d);
    let mut solver = Solver::new();
    solver.set_conflict_budget(config.conflicts_per_solve);
    solver.set_memory_budget(config.mem_budget);
    solver.set_heartbeat(config.heartbeat.clone());
    let miter = encode_miter(locked, &mut solver);
    // One preprocessing pass over the freshly-encoded miter before any DIP
    // query: Tseitin encodings leave subsumed and strengthenable clauses,
    // and no assumptions are in flight yet.
    solver.preprocess();

    // Why the loop ended early, when it did. Timeouts are kept distinct
    // from deterministic budget exhaustion because only the latter yields a
    // reproducible (censored) runtime label.
    #[derive(Clone, Copy)]
    enum End {
        Budget,
        Timeout(ExpiredDeadline),
        Memory,
        Cancelled,
    }

    // The deadline for the next solver call: the attack deadline or the
    // per-query deadline, whichever falls first.
    let query_deadline = |attack_deadline: Option<Instant>| -> Option<Instant> {
        let per_query = config.per_query_deadline.map(|d| Instant::now() + d);
        match (attack_deadline, per_query) {
            (Some(a), Some(q)) => Some(a.min(q)),
            (a, q) => a.or(q),
        }
    };
    // Classifies a `SolveResult::Unknown`: past a wall-clock deadline it
    // was a timeout (the whole-attack bound wins attribution when both have
    // expired), otherwise the per-solve conflict cap fired.
    let classify_unknown =
        |attack_deadline: Option<Instant>, solve_deadline: Option<Instant>| -> End {
            let now = Instant::now();
            if attack_deadline.is_some_and(|d| now >= d) {
                End::Timeout(ExpiredDeadline::Attack)
            } else if solve_deadline.is_some_and(|d| now >= d) {
                End::Timeout(ExpiredDeadline::PerQuery)
            } else {
                End::Budget
            }
        };

    let mut iterations = 0usize;
    let mut dips = Vec::new();
    let mut ended: Option<End> = None;

    loop {
        if let Some(hb) = &config.heartbeat {
            // The solver beats at its deadline-poll sites; easy queries can
            // finish below those thresholds, so the iteration boundary
            // beats too.
            hb.beat();
        }
        if config.is_cancelled() {
            ended = Some(End::Cancelled);
            break;
        }
        if attack_deadline.is_some_and(|d| Instant::now() >= d) {
            ended = Some(End::Timeout(ExpiredDeadline::Attack));
            break;
        }
        if let Some(max) = config.max_iterations {
            if iterations >= max {
                ended = Some(End::Budget);
                break;
            }
        }
        if let Some(budget) = config.work_budget {
            if solver.stats().work() >= budget {
                ended = Some(End::Budget);
                break;
            }
        }
        let deadline = query_deadline(attack_deadline);
        solver.set_deadline(deadline);
        // Observation-only: snapshot counters/clock around the query so the
        // trace can attribute work per DIP iteration. Reads never feed back
        // into the attack, so tracing cannot perturb labels.
        let observing = obs::enabled();
        let query_started = observing.then(Instant::now);
        let work_before = if observing { solver.stats().work() } else { 0 };
        match solver.solve_with_assumptions(&[miter.diff_lit()]) {
            SolveResult::Unknown => {
                // A memory give-up is self-attributed by the solver;
                // everything else is classified by which bound expired.
                ended = Some(
                    if solver.out_of_budget() == Some(sat::OutOfBudget::Memory) {
                        End::Memory
                    } else {
                        classify_unknown(attack_deadline, deadline)
                    },
                );
                break;
            }
            SolveResult::Unsat => break, // no DIP remains
            SolveResult::Sat(model) => {
                let dip: Vec<bool> = miter.inputs.iter().map(|&v| model.value(v)).collect();
                let response = oracle.query(&dip);
                debug_assert_eq!(response.len(), locked.outputs().len());
                // Constrain both key copies to reproduce the oracle on this DIP.
                for key_vars in [&miter.key1, &miter.key2] {
                    let enc = encode_circuit_with(
                        locked,
                        &mut solver,
                        EncodeOptions {
                            input_vars: None,
                            key_vars: Some(key_vars.clone()),
                        },
                    );
                    fix_vars(&mut solver, &enc.input_vars(locked), &dip);
                    fix_vars(&mut solver, &enc.output_vars(locked), &response);
                }
                iterations += 1;
                if observing {
                    obs::emit(obs::EventKind::AttackIteration {
                        iteration: iterations as u64,
                        query_work: solver.stats().work() - work_before,
                        total_work: solver.stats().work(),
                        miter_vars: solver.num_vars() as u64,
                        miter_clauses: solver.num_clauses_total() as u64,
                        wall_ns: query_started
                            .map(|t| t.elapsed().as_nanos() as u64)
                            .unwrap_or(0),
                    });
                }
                if config.record_dips {
                    dips.push(dip);
                }
                // Each DIP fixes hundreds of copy inputs/outputs at the root
                // level; periodically preprocess (root sweep, subsumption,
                // self-subsuming resolution, bounded probing) so the solver
                // isn't dragging two freshly-encoded circuit copies' worth of
                // satisfied clauses through every propagation. Safe here:
                // assumptions are per-solve, and between iterations none are
                // in flight.
                if iterations.is_multiple_of(4) {
                    solver.preprocess();
                }
            }
        }
    }

    let outcome = match ended {
        Some(End::Cancelled) => AttackOutcome::Cancelled,
        Some(End::Timeout(which)) => AttackOutcome::TimedOut(which),
        Some(End::Memory) => AttackOutcome::MemoryExceeded,
        Some(End::Budget) => AttackOutcome::BudgetExceeded,
        None => {
            // No DIP remains: any key satisfying the I/O constraints is
            // correct. The extraction solve stays under the attack deadline
            // (but not the per-query one — it is the last call and must not
            // be starved by an earlier slow query).
            solver.set_deadline(attack_deadline);
            match solver.solve() {
                SolveResult::Sat(model) => {
                    let key: Key = miter.key1.iter().map(|&v| model.value(v)).collect();
                    AttackOutcome::KeyRecovered(key)
                }
                SolveResult::Unsat => return Err(AttackError::OracleInconsistent),
                SolveResult::Unknown => {
                    if solver.out_of_budget() == Some(sat::OutOfBudget::Memory) {
                        AttackOutcome::MemoryExceeded
                    } else {
                        match classify_unknown(attack_deadline, None) {
                            End::Timeout(which) => AttackOutcome::TimedOut(which),
                            _ => AttackOutcome::BudgetExceeded,
                        }
                    }
                }
            }
        }
    };

    let solver_stats = *solver.stats();
    Ok(AttackResult {
        outcome,
        iterations,
        oracle_queries: oracle.num_queries(),
        solver_stats,
        runtime: AttackRuntime::new(&solver_stats, start.elapsed()),
        peak_logical_bytes: solver.meter().high_water(),
        dips,
    })
}

/// Convenience wrapper: attacks a [`LockedCircuit`] with a [`SimOracle`]
/// built from its original netlist.
///
/// # Errors
///
/// Same conditions as [`attack`].
pub fn attack_locked(
    locked: &LockedCircuit,
    config: &AttackConfig,
) -> Result<AttackResult, AttackError> {
    let mut oracle = SimOracle::new(locked.original.clone());
    attack(&locked.locked, &mut oracle, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use obfuscate::{lock_random, SchemeKind};
    use synth::GeneratorConfig;

    fn run(scheme: SchemeKind, gates: usize, seed: u64) -> (LockedCircuit, AttackResult) {
        let locked = lock_random(&netlist::c17(), scheme, gates, seed).unwrap();
        let result = attack_locked(&locked, &AttackConfig::default()).unwrap();
        (locked, result)
    }

    #[test]
    fn recovers_functionally_correct_key_xor() {
        for seed in 0..6 {
            let (locked, result) = run(SchemeKind::XorLock, 3, seed);
            let key = result.key().expect("attack finishes on c17");
            assert!(locked.verify_key(key).unwrap(), "seed {seed}");
            assert!(result.iterations <= 32, "c17 has only 32 input patterns");
        }
    }

    #[test]
    fn recovers_functionally_correct_key_mux() {
        for seed in 0..4 {
            let (locked, result) = run(SchemeKind::MuxLock, 3, seed);
            let key = result.key().expect("attack finishes on c17");
            assert!(locked.verify_key(key).unwrap(), "seed {seed}");
        }
    }

    #[test]
    fn recovers_functionally_correct_key_lut() {
        for seed in 0..4 {
            let (locked, result) = run(SchemeKind::LutLock { lut_size: 2 }, 2, seed);
            let key = result.key().expect("attack finishes on c17");
            assert!(locked.verify_key(key).unwrap(), "seed {seed}");
        }
    }

    #[test]
    fn recovered_key_may_differ_but_matches_oracle() {
        // With LUT locking, many keys are functionally correct (pad inputs
        // are don't-cares); the attack may return any of them.
        let (locked, result) = run(SchemeKind::LutLock { lut_size: 3 }, 2, 9);
        let key = result.key().unwrap();
        assert!(locked.verify_key(key).unwrap());
    }

    #[test]
    fn work_budget_aborts_attack() {
        let base = synth::generate(&GeneratorConfig::new("mid", 16, 8, 150).with_seed(2));
        let locked = lock_random(&base, SchemeKind::LutLock { lut_size: 4 }, 10, 3).unwrap();
        let config = AttackConfig {
            work_budget: Some(1),
            ..AttackConfig::default()
        };
        let result = attack_locked(&locked, &config).unwrap();
        assert_eq!(result.outcome, AttackOutcome::BudgetExceeded);
        assert!(result.key().is_none());
    }

    #[test]
    fn max_iterations_aborts_attack() {
        let base = synth::generate(&GeneratorConfig::new("mid", 16, 8, 150).with_seed(2));
        let locked = lock_random(&base, SchemeKind::XorLock, 20, 3).unwrap();
        let config = AttackConfig {
            max_iterations: Some(0),
            ..AttackConfig::default()
        };
        let result = attack_locked(&locked, &config).unwrap();
        assert_eq!(result.outcome, AttackOutcome::BudgetExceeded);
        assert_eq!(result.iterations, 0);
    }

    #[test]
    fn dips_recorded_when_requested() {
        let locked = lock_random(&netlist::c17(), SchemeKind::XorLock, 4, 11).unwrap();
        let config = AttackConfig {
            record_dips: true,
            ..AttackConfig::default()
        };
        let result = attack_locked(&locked, &config).unwrap();
        assert_eq!(result.dips.len(), result.iterations);
        for dip in &result.dips {
            assert_eq!(dip.len(), 5);
        }
    }

    #[test]
    fn pre_cancelled_attack_stops_immediately() {
        let base = synth::generate(&GeneratorConfig::new("mid", 16, 8, 150).with_seed(2));
        let locked = lock_random(&base, SchemeKind::XorLock, 20, 3).unwrap();
        let token = CancelToken::new();
        token.cancel();
        let config = AttackConfig::default().with_cancel(token.clone());
        assert!(config.is_cancelled());
        let result = attack_locked(&locked, &config).unwrap();
        assert_eq!(result.outcome, AttackOutcome::Cancelled);
        assert!(result.key().is_none());
        assert_eq!(result.iterations, 0);
    }

    #[test]
    fn expired_deadline_times_out_not_budget() {
        let base = synth::generate(&GeneratorConfig::new("mid", 16, 8, 150).with_seed(2));
        let locked = lock_random(&base, SchemeKind::LutLock { lut_size: 4 }, 10, 3).unwrap();
        let config = AttackConfig::default().with_deadline(Duration::ZERO);
        let result = attack_locked(&locked, &config).unwrap();
        assert_eq!(
            result.outcome,
            AttackOutcome::TimedOut(ExpiredDeadline::Attack)
        );
        assert!(result.key().is_none());
        assert_eq!(result.iterations, 0);
    }

    #[test]
    fn mid_attack_deadline_times_out() {
        // A LUT-locked mid-size circuit takes well over 5 ms to attack; the
        // deadline must interrupt the run mid-flight via the solver's
        // wall-clock check, not just at iteration boundaries.
        let base = synth::generate(&GeneratorConfig::new("mid", 16, 8, 150).with_seed(2));
        let locked = lock_random(&base, SchemeKind::LutLock { lut_size: 4 }, 12, 3).unwrap();
        let config = AttackConfig::default().with_deadline(Duration::from_millis(5));
        let result = attack_locked(&locked, &config).unwrap();
        assert_eq!(
            result.outcome,
            AttackOutcome::TimedOut(ExpiredDeadline::Attack)
        );
    }

    #[test]
    fn per_query_deadline_times_out_a_pathological_query() {
        let base = synth::generate(&GeneratorConfig::new("mid", 16, 8, 150).with_seed(2));
        let locked = lock_random(&base, SchemeKind::LutLock { lut_size: 4 }, 12, 3).unwrap();
        let config = AttackConfig {
            per_query_deadline: Some(Duration::ZERO),
            ..AttackConfig::default()
        };
        let result = attack_locked(&locked, &config).unwrap();
        assert_eq!(
            result.outcome,
            AttackOutcome::TimedOut(ExpiredDeadline::PerQuery),
            "an expired per-query bound must not be blamed on the attack deadline"
        );
    }

    #[test]
    fn attack_deadline_wins_attribution_over_per_query() {
        // With both bounds set and the whole-attack deadline already
        // expired, the timeout is attributed to the attack deadline even
        // though the per-query bound would also have fired.
        let base = synth::generate(&GeneratorConfig::new("mid", 16, 8, 150).with_seed(2));
        let locked = lock_random(&base, SchemeKind::LutLock { lut_size: 4 }, 12, 3).unwrap();
        let config = AttackConfig {
            per_query_deadline: Some(Duration::ZERO),
            ..AttackConfig::default().with_deadline(Duration::ZERO)
        };
        let result = attack_locked(&locked, &config).unwrap();
        assert_eq!(
            result.outcome,
            AttackOutcome::TimedOut(ExpiredDeadline::Attack)
        );
    }

    #[test]
    fn generous_deadline_leaves_result_untouched() {
        let locked = lock_random(&netlist::c17(), SchemeKind::XorLock, 3, 1).unwrap();
        let unlimited = attack_locked(&locked, &AttackConfig::default()).unwrap();
        let bounded = attack_locked(
            &locked,
            &AttackConfig::default().with_deadline(Duration::from_secs(600)),
        )
        .unwrap();
        assert_eq!(unlimited.outcome, bounded.outcome);
        assert_eq!(unlimited.iterations, bounded.iterations);
    }

    #[test]
    fn anti_sat_dip_count_grows_exponentially_in_key_width() {
        // The point-function block admits one distinguishing pattern per
        // wrong key pair, so every extra tap bit roughly doubles the DIP
        // count — the property that makes the scheme SAT-resilient.
        let mut iterations = Vec::new();
        for width in [3usize, 4, 5] {
            let locked = lock_random(
                &netlist::c17(),
                SchemeKind::AntiSat { key_width: width },
                1,
                2,
            )
            .unwrap();
            let result = attack_locked(&locked, &AttackConfig::default()).unwrap();
            let key = result.key().expect("attack finishes on c17");
            // Random sampling can miss the single flipped pattern, so check
            // the recovered key exhaustively against the oracle.
            let applied = locked.apply_key(key).unwrap();
            for pat in 0..1u32 << 5 {
                let ins: Vec<bool> = (0..5).map(|b| pat >> b & 1 == 1).collect();
                assert_eq!(
                    applied.simulate_bool(&ins, &[]).unwrap(),
                    locked.original.simulate_bool(&ins, &[]).unwrap(),
                    "width {width} pattern {pat}"
                );
            }
            iterations.push(result.iterations);
        }
        assert!(
            iterations[0] >= 4 && iterations[1] > iterations[0] && iterations[2] > iterations[1],
            "DIP counts must grow with key width: {iterations:?}"
        );
    }

    #[test]
    fn anti_sat_deadline_mid_iteration_times_out_not_budget() {
        // Regression (issue 9): a resistant instance with an ample *work*
        // budget and a small wall-clock deadline dies mid-DIP-iteration
        // inside the solver; the outcome must name the expired deadline and
        // never degrade into BudgetExceeded.
        let base = synth::generate(&GeneratorConfig::new("mid", 16, 8, 150).with_seed(2));
        let locked = lock_random(&base, SchemeKind::AntiSat { key_width: 8 }, 1, 3).unwrap();
        let config = AttackConfig {
            work_budget: Some(u64::MAX),
            ..AttackConfig::default().with_deadline(Duration::from_millis(5))
        };
        let result = attack_locked(&locked, &config).unwrap();
        assert_eq!(
            result.outcome,
            AttackOutcome::TimedOut(ExpiredDeadline::Attack),
            "iterations={}",
            result.iterations
        );
        if let AttackOutcome::TimedOut(bound) = result.outcome {
            assert_eq!(bound.describe(), "deadline");
        }
    }

    #[test]
    fn tight_mem_budget_ends_as_memory_exceeded() {
        let base = synth::generate(&GeneratorConfig::new("mid", 16, 8, 150).with_seed(2));
        let locked = lock_random(&base, SchemeKind::LutLock { lut_size: 4 }, 10, 3).unwrap();
        let config = AttackConfig {
            mem_budget: Some(1024), // far below the encoded miter itself
            ..AttackConfig::default()
        };
        let result = attack_locked(&locked, &config).unwrap();
        assert_eq!(result.outcome, AttackOutcome::MemoryExceeded);
        assert!(result.key().is_none());
    }

    #[test]
    fn mem_budget_verdict_is_deterministic_and_attributed_over_deadline() {
        // Both a memory budget and a (not yet expired) deadline in flight:
        // the solver's self-attributed memory give-up must win, and two
        // runs must agree exactly.
        let base = synth::generate(&GeneratorConfig::new("mid", 16, 8, 150).with_seed(2));
        let locked = lock_random(&base, SchemeKind::LutLock { lut_size: 4 }, 10, 3).unwrap();
        let config = AttackConfig {
            mem_budget: Some(1024),
            ..AttackConfig::default().with_deadline(Duration::from_secs(600))
        };
        let a = attack_locked(&locked, &config).unwrap();
        let b = attack_locked(&locked, &config).unwrap();
        assert_eq!(a.outcome, AttackOutcome::MemoryExceeded);
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.solver_stats, b.solver_stats);
        assert_eq!(a.peak_logical_bytes, b.peak_logical_bytes);
    }

    #[test]
    fn peak_logical_bytes_is_recorded_on_success() {
        let (_, result) = run(SchemeKind::XorLock, 3, 2);
        assert!(result.key().is_some());
        assert!(
            result.peak_logical_bytes > 0,
            "the miter encoding alone is thousands of logical bytes"
        );
    }

    #[test]
    fn generous_mem_budget_leaves_result_untouched() {
        let locked = lock_random(&netlist::c17(), SchemeKind::XorLock, 3, 1).unwrap();
        let unlimited = attack_locked(&locked, &AttackConfig::default()).unwrap();
        let capped = attack_locked(
            &locked,
            &AttackConfig {
                mem_budget: Some(1 << 30),
                ..AttackConfig::default()
            },
        )
        .unwrap();
        assert_eq!(unlimited.outcome, capped.outcome);
        assert_eq!(unlimited.solver_stats, capped.solver_stats);
    }

    #[test]
    fn heartbeat_beats_across_the_attack() {
        let dog = budget::Watchdog::new(budget::WatchdogConfig {
            stall_after: Duration::from_secs(3600),
            poll: Duration::from_millis(50),
        });
        let hb = dog.watch("attack", |_| {});
        let locked = lock_random(&netlist::c17(), SchemeKind::XorLock, 3, 1).unwrap();
        let config = AttackConfig {
            heartbeat: Some(hb.clone()),
            ..AttackConfig::default()
        };
        let result = attack_locked(&locked, &config).unwrap();
        assert!(result.key().is_some());
        assert!(!hb.tripped());
    }

    #[test]
    fn cancel_token_is_shared_across_clones_and_threads() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!clone.is_cancelled());
        std::thread::scope(|scope| {
            scope.spawn(|| token.cancel());
        });
        assert!(clone.is_cancelled());
    }

    #[test]
    fn attack_types_are_send_and_sync() {
        // The dataset pipeline fans attacks out over worker threads; the
        // config and result types must be shareable.
        const fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AttackConfig>();
        assert_send_sync::<AttackOutcome>();
        assert_send_sync::<AttackResult>();
        assert_send_sync::<CancelToken>();
    }

    #[test]
    fn attack_on_unkeyed_circuit_errors() {
        let mut oracle = SimOracle::new(netlist::c17());
        let err = attack(&netlist::c17(), &mut oracle, &AttackConfig::default()).unwrap_err();
        assert_eq!(err, AttackError::NothingToAttack);
    }

    #[test]
    fn attack_runtime_grows_with_key_count() {
        // The paper's central premise: more obfuscated gates, more work.
        let base = synth::generate(&GeneratorConfig::new("grow", 12, 6, 120).with_seed(7));
        let mut works = Vec::new();
        for n in [1usize, 8, 24] {
            let locked = lock_random(&base, SchemeKind::XorLock, n, 5).unwrap();
            let result = attack_locked(&locked, &AttackConfig::default()).unwrap();
            assert!(result.key().is_some());
            works.push(result.solver_stats.work());
        }
        assert!(
            works[2] > works[0],
            "24 key gates should cost more work than 1: {works:?}"
        );
    }

    #[test]
    fn solver_stats_and_oracle_queries_populated() {
        let (_, result) = run(SchemeKind::XorLock, 3, 2);
        assert!(result.solver_stats.solves >= 1);
        assert_eq!(result.oracle_queries, result.iterations);
        assert!(result.runtime.work > 0);
    }
}
