use sat::SolverStats;
use std::fmt;
use std::time::Duration;

/// Calibration constant converting solver work units into synthetic seconds.
///
/// One work unit (see [`SolverStats::work`]) corresponds roughly to a few
/// tens of machine instructions in this solver; 2e7 units/second puts the
/// synthetic timescale in the same ballpark as the wall-clock of a release
/// build on commodity hardware. Only the *scale* of runtime labels depends
/// on this constant, never their ordering.
pub const WORK_UNITS_PER_SECOND: f64 = 2.0e7;

/// Which runtime measure the dataset pipeline records as the label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RuntimeMeasure {
    /// Deterministic solver-work proxy (reproducible across machines). This
    /// is the default: the paper's tables are about the *relationships*
    /// between runtimes, which the proxy preserves while making every
    /// experiment bit-reproducible.
    #[default]
    SolverWork,
    /// Actual elapsed wall-clock time of the attack.
    WallClock,
}

/// The runtime of one attack, under both measures.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AttackRuntime {
    /// Solver work expended (deterministic).
    pub work: u64,
    /// Wall-clock time elapsed.
    pub wall: Duration,
}

impl AttackRuntime {
    /// Builds a runtime record from solver counters plus elapsed time.
    pub fn new(stats: &SolverStats, wall: Duration) -> Self {
        AttackRuntime {
            work: stats.work(),
            wall,
        }
    }

    /// Runtime in seconds under the chosen measure (synthetic seconds for
    /// [`RuntimeMeasure::SolverWork`]).
    pub fn seconds(&self, measure: RuntimeMeasure) -> f64 {
        match measure {
            RuntimeMeasure::SolverWork => self.work as f64 / WORK_UNITS_PER_SECOND,
            RuntimeMeasure::WallClock => self.wall.as_secs_f64(),
        }
    }

    /// Natural log of the runtime in seconds, floored to avoid `-inf` on
    /// sub-microsecond attacks. Runtime prediction is trained on this scale
    /// because deobfuscation time grows exponentially with key count
    /// (paper, Eq. 3).
    pub fn log_seconds(&self, measure: RuntimeMeasure) -> f64 {
        self.seconds(measure).max(1e-6).ln()
    }
}

impl fmt::Display for AttackRuntime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.3}s synthetic ({} work units, {:.3}s wall)",
            self.seconds(RuntimeMeasure::SolverWork),
            self.work,
            self.wall.as_secs_f64()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_under_both_measures() {
        let rt = AttackRuntime {
            work: 2_000_000,
            wall: Duration::from_millis(250),
        };
        assert!((rt.seconds(RuntimeMeasure::SolverWork) - 0.1).abs() < 1e-12);
        assert!((rt.seconds(RuntimeMeasure::WallClock) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn log_seconds_is_floored() {
        let rt = AttackRuntime {
            work: 0,
            wall: Duration::ZERO,
        };
        assert!(rt.log_seconds(RuntimeMeasure::SolverWork).is_finite());
    }

    #[test]
    fn log_seconds_flooring_boundary() {
        // The 1e-6 s floor corresponds to exactly 20 work units at the
        // calibration constant: everything at or below collapses to
        // ln(1e-6); everything above is the exact logarithm. The CSV layer
        // round-trips the floored value bit-exactly (see dataset::csv).
        let floor = (1e-6f64).ln();
        for work in [0u64, 1, 19, 20] {
            let rt = AttackRuntime {
                work,
                wall: Duration::ZERO,
            };
            assert_eq!(rt.log_seconds(RuntimeMeasure::SolverWork), floor);
        }
        let above = AttackRuntime {
            work: 21,
            wall: Duration::ZERO,
        };
        let got = above.log_seconds(RuntimeMeasure::SolverWork);
        assert_eq!(got, (21.0 / WORK_UNITS_PER_SECOND).ln());
        assert!(got > floor);

        // Sub-microsecond wall clocks collapse to the same floor; anything
        // at or above a microsecond is exact.
        let sub = AttackRuntime {
            work: 0,
            wall: Duration::from_nanos(999),
        };
        assert_eq!(sub.log_seconds(RuntimeMeasure::WallClock), floor);
        let exact = AttackRuntime {
            work: 0,
            wall: Duration::from_micros(2),
        };
        assert!((exact.log_seconds(RuntimeMeasure::WallClock) - 2e-6f64.ln()).abs() < 1e-15);
    }

    #[test]
    fn display_shows_both() {
        let rt = AttackRuntime {
            work: 100,
            wall: Duration::from_secs(1),
        };
        let text = rt.to_string();
        assert!(text.contains("work units"));
        assert!(text.contains("wall"));
    }
}
