use std::fmt;

/// Errors produced while running the SAT attack.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AttackError {
    /// The circuit under attack has no key inputs.
    NothingToAttack,
    /// The circuit under attack has no outputs to observe.
    NoOutputs,
    /// The accumulated I/O constraints became unsatisfiable, meaning the
    /// oracle's behaviour cannot be produced by any key — the oracle and the
    /// locked netlist do not match.
    OracleInconsistent,
    /// A netlist operation failed.
    Netlist(netlist::NetlistError),
    /// The attack was stopped early through its [`crate::CancelToken`]; any
    /// partial result is unusable.
    Cancelled,
}

impl fmt::Display for AttackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackError::NothingToAttack => {
                f.write_str("circuit has no key inputs; nothing to attack")
            }
            AttackError::NoOutputs => f.write_str("circuit has no outputs to observe"),
            AttackError::OracleInconsistent => {
                f.write_str("oracle responses are inconsistent with the locked netlist")
            }
            AttackError::Netlist(e) => write!(f, "netlist error: {e}"),
            AttackError::Cancelled => f.write_str("attack cancelled"),
        }
    }
}

impl std::error::Error for AttackError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AttackError::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<netlist::NetlistError> for AttackError {
    fn from(e: netlist::NetlistError) -> Self {
        AttackError::Netlist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(AttackError::NothingToAttack.to_string().contains("key"));
        assert!(AttackError::OracleInconsistent
            .to_string()
            .contains("inconsistent"));
    }
}
