//! From-scratch classical regression estimators and metrics.
//!
//! These are the baselines of the paper's Tables I and II (Section IV):
//! linear regression, ridge, LASSO, elastic net, ε-SVR with polynomial and
//! RBF kernels, SGD regression, orthogonal matching pursuit, least-angle
//! regression, Theil-Sen, and passive-aggressive regression — each
//! implemented from its cited algorithm (coordinate descent for
//! LASSO/elastic net, dual coordinate descent for SVR, Efron et al. for
//! LARS, Mallat-Zhang for OMP, Dang et al. for Theil-Sen).
//!
//! All estimators implement [`Regressor`], so the experiment harness can
//! sweep them uniformly.
//!
//! # Example
//!
//! ```
//! use regress::{metrics, LinearRegression, Regressor};
//! use tensor::Matrix;
//!
//! # fn main() -> Result<(), regress::RegressError> {
//! // y = 3 x - 1
//! let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0]]);
//! let y = [-1.0, 2.0, 5.0, 8.0];
//! let mut model = LinearRegression::new();
//! model.fit(&x, &y)?;
//! let pred = model.predict(&x);
//! assert!(metrics::mse(&pred, &y) < 1e-12);
//! # Ok(())
//! # }
//! ```

mod elastic_net;
mod lars;
mod lasso;
mod linear;
pub mod metrics;
mod omp;
mod par;
mod ridge;
mod scale;
mod sgd;
mod svr;
mod theil_sen;
mod traits;

pub use elastic_net::ElasticNet;
pub use lars::Lars;
pub use lasso::Lasso;
pub use linear::LinearRegression;
pub use omp::OrthogonalMatchingPursuit;
pub use par::PassiveAggressive;
pub use ridge::Ridge;
pub use scale::StandardScaler;
pub use sgd::SgdRegressor;
pub use svr::{Kernel, Svr};
pub use theil_sen::TheilSen;
pub use traits::{RegressError, Regressor};

pub(crate) mod internal {
    use tensor::Matrix;

    /// Column means of `x` and the mean of `y`.
    pub fn means(x: &Matrix, y: &[f64]) -> (Vec<f64>, f64) {
        let n = x.rows() as f64;
        let mut xm = vec![0.0; x.cols()];
        for r in 0..x.rows() {
            for (m, &v) in xm.iter_mut().zip(x.row(r)) {
                *m += v;
            }
        }
        for m in &mut xm {
            *m /= n;
        }
        let ym = y.iter().sum::<f64>() / n;
        (xm, ym)
    }

    /// Centers the design matrix and targets (for intercept handling).
    pub fn center(x: &Matrix, y: &[f64]) -> (Matrix, Vec<f64>, Vec<f64>, f64) {
        let (xm, ym) = means(x, y);
        let xc = Matrix::from_fn(x.rows(), x.cols(), |r, c| x.get(r, c) - xm[c]);
        let yc: Vec<f64> = y.iter().map(|&v| v - ym).collect();
        (xc, yc, xm, ym)
    }

    /// Linear prediction with an intercept expressed through means:
    /// `f(x) = (x - x_mean) . w + y_mean`.
    pub fn predict_centered(x: &Matrix, w: &[f64], x_mean: &[f64], y_mean: f64) -> Vec<f64> {
        (0..x.rows())
            .map(|r| {
                x.row(r)
                    .iter()
                    .zip(x_mean)
                    .zip(w)
                    .map(|((&xv, &m), &wv)| (xv - m) * wv)
                    .sum::<f64>()
                    + y_mean
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::Matrix;

    /// A deterministic noisy linear problem every estimator should crack.
    pub(crate) fn linear_problem() -> (Matrix, Vec<f64>) {
        let n = 60;
        let x = Matrix::from_fn(n, 3, |r, c| (((r * 7 + c * 13) % 23) as f64 - 11.0) / 11.0);
        let y: Vec<f64> = (0..n)
            .map(|r| {
                let row = x.row(r);
                2.0 * row[0] - 1.0 * row[1] + 0.5 * row[2] + 3.0 + 0.01 * ((r % 5) as f64 - 2.0)
            })
            .collect();
        (x, y)
    }

    #[test]
    fn all_estimators_fit_a_linear_problem() {
        let (x, y) = linear_problem();
        let mut models: Vec<Box<dyn Regressor>> = vec![
            Box::new(LinearRegression::new()),
            Box::new(Ridge::new(1e-4)),
            Box::new(Lasso::new(1e-4)),
            Box::new(ElasticNet::new(1e-4, 0.5)),
            Box::new(Svr::new(Kernel::Rbf { gamma: 0.5 }, 100.0, 0.01)),
            Box::new(Svr::new(
                Kernel::Poly {
                    degree: 2,
                    gamma: 1.0,
                    coef0: 1.0,
                },
                100.0,
                0.01,
            )),
            Box::new(SgdRegressor::default()),
            Box::new(OrthogonalMatchingPursuit::new(Some(3))),
            Box::new(Lars::new(None)),
            Box::new(PassiveAggressive::default()),
        ];
        for model in &mut models {
            model
                .fit(&x, &y)
                .unwrap_or_else(|e| panic!("{} failed: {e}", model.name()));
            let pred = model.predict(&x);
            let err = metrics::mse(&pred, &y);
            assert!(
                err < 0.5,
                "{} MSE {err} too high on an easy linear problem",
                model.name()
            );
        }
    }
}
