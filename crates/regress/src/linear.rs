use crate::internal::{center, predict_centered};
use crate::traits::{RegressError, Regressor};
use tensor::linalg::lstsq;
use tensor::Matrix;

/// Ordinary least squares with intercept.
///
/// Like scikit-learn's `LinearRegression`, the normal equations are solved
/// directly with only a vanishing numerical ridge (`1e-12`), so collinear
/// features produce the same exploding coefficients the paper observes on
/// its unscaled sum-aggregated inputs (Table II, LR row).
#[derive(Debug, Clone, Default)]
pub struct LinearRegression {
    weights: Option<Vec<f64>>,
    x_mean: Vec<f64>,
    y_mean: f64,
}

impl LinearRegression {
    /// A fresh, unfitted estimator.
    pub fn new() -> Self {
        LinearRegression::default()
    }

    /// The fitted coefficients (feature weights, no intercept).
    pub fn coefficients(&self) -> Option<&[f64]> {
        self.weights.as_deref()
    }
}

impl Regressor for LinearRegression {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), RegressError> {
        let (xc, yc, xm, ym) = center(x, y);
        let w = lstsq(&xc, &yc, 1e-12)?;
        self.weights = Some(w);
        self.x_mean = xm;
        self.y_mean = ym;
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        let w = self.weights.as_ref().expect("fit before predict");
        predict_centered(x, w, &self.x_mean, self.y_mean)
    }

    fn name(&self) -> String {
        "LR".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::mse;

    #[test]
    fn exact_fit_on_noiseless_line() {
        let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0]]);
        let y = [1.0, 3.0, 5.0];
        let mut lr = LinearRegression::new();
        lr.fit(&x, &y).unwrap();
        assert!(mse(&lr.predict(&x), &y) < 1e-18);
        let coef = lr.coefficients().unwrap();
        assert!((coef[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn intercept_is_recovered() {
        let x = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0], &[4.0]]);
        let y = [10.0, 10.0, 10.0, 10.0];
        let mut lr = LinearRegression::new();
        lr.fit(&x, &y).unwrap();
        assert!((lr.predict(&Matrix::from_rows(&[&[99.0]]))[0] - 10.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "fit before predict")]
    fn predict_without_fit_panics() {
        LinearRegression::new().predict(&Matrix::zeros(1, 1));
    }
}
