use std::fmt;
use tensor::linalg::LinalgError;
use tensor::Matrix;

/// Errors produced while fitting or predicting.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RegressError {
    /// `predict` called before a successful `fit`.
    NotFitted,
    /// The training data cannot support this estimator (explained inside).
    Degenerate(String),
    /// A direct linear solve failed.
    Linalg(LinalgError),
}

impl fmt::Display for RegressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegressError::NotFitted => f.write_str("estimator has not been fitted"),
            RegressError::Degenerate(why) => write!(f, "degenerate training data: {why}"),
            RegressError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
        }
    }
}

impl std::error::Error for RegressError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RegressError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for RegressError {
    fn from(e: LinalgError) -> Self {
        RegressError::Linalg(e)
    }
}

/// A supervised regressor mapping feature rows to scalar targets.
///
/// `x` is an `n_samples x n_features` design matrix; `y` has one target per
/// row. Estimators are reusable: a second `fit` discards the first.
pub trait Regressor {
    /// Fits the estimator.
    ///
    /// # Errors
    ///
    /// Implementations return [`RegressError::Degenerate`] when the data
    /// cannot support them (e.g. too few samples for Theil-Sen) and
    /// [`RegressError::Linalg`] when a direct solve fails.
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), RegressError>;

    /// Predicts targets for each row of `x`.
    ///
    /// # Panics
    ///
    /// Implementations panic when called before a successful [`fit`]
    /// (programming error), or when the feature count differs from training.
    ///
    /// [`fit`]: Regressor::fit
    fn predict(&self, x: &Matrix) -> Vec<f64>;

    /// Human-readable estimator name (used in experiment tables).
    fn name(&self) -> String;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(RegressError::NotFitted.to_string().contains("fitted"));
        assert!(RegressError::Degenerate("x".into())
            .to_string()
            .contains("x"));
        let e = RegressError::from(LinalgError::Singular);
        assert!(e.to_string().contains("singular"));
    }
}
