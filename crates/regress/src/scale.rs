use tensor::Matrix;

/// Zero-mean / unit-variance feature scaling.
///
/// ```
/// use regress::StandardScaler;
/// use tensor::Matrix;
///
/// let x = Matrix::from_rows(&[&[0.0, 10.0], &[2.0, 30.0]]);
/// let scaler = StandardScaler::fit(&x);
/// let z = scaler.transform(&x);
/// assert!(z.col_sums().max_abs() < 1e-12); // zero mean per column
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StandardScaler {
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl StandardScaler {
    /// Learns per-column mean and standard deviation. Constant columns get
    /// `std = 1` so transforms never divide by zero.
    ///
    /// # Panics
    ///
    /// Panics on an empty matrix.
    pub fn fit(x: &Matrix) -> Self {
        assert!(x.rows() > 0, "cannot fit a scaler on zero samples");
        let n = x.rows() as f64;
        let mut mean = vec![0.0; x.cols()];
        for r in 0..x.rows() {
            for (m, &v) in mean.iter_mut().zip(x.row(r)) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0; x.cols()];
        for r in 0..x.rows() {
            for ((v, &m), &xv) in var.iter_mut().zip(&mean).zip(x.row(r)) {
                *v += (xv - m) * (xv - m);
            }
        }
        let std: Vec<f64> = var
            .iter()
            .map(|&v| {
                let s = (v / n).sqrt();
                if s < 1e-12 {
                    1.0
                } else {
                    s
                }
            })
            .collect();
        StandardScaler { mean, std }
    }

    /// Applies the learned scaling.
    ///
    /// # Panics
    ///
    /// Panics if the column count differs from the fitted data.
    pub fn transform(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.mean.len(), "feature count mismatch");
        Matrix::from_fn(x.rows(), x.cols(), |r, c| {
            (x.get(r, c) - self.mean[c]) / self.std[c]
        })
    }

    /// Fits and transforms in one call.
    pub fn fit_transform(x: &Matrix) -> (Self, Matrix) {
        let scaler = StandardScaler::fit(x);
        let z = scaler.transform(x);
        (scaler, z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transforms_to_unit_scale() {
        let x = Matrix::from_rows(&[&[1.0, -5.0], &[3.0, 5.0], &[5.0, 0.0]]);
        let (_, z) = StandardScaler::fit_transform(&x);
        for c in 0..2 {
            let col: Vec<f64> = (0..3).map(|r| z.get(r, c)).collect();
            let mean = col.iter().sum::<f64>() / 3.0;
            let var = col.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / 3.0;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_columns_are_safe() {
        let x = Matrix::from_rows(&[&[7.0], &[7.0]]);
        let (_, z) = StandardScaler::fit_transform(&x);
        assert_eq!(z.get(0, 0), 0.0);
        assert!(z.get(1, 0).is_finite());
    }
}
