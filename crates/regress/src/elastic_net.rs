use crate::internal::{center, predict_centered};
use crate::traits::{RegressError, Regressor};
use tensor::Matrix;

/// Elastic-net regression (Zou & Hastie) fitted by cyclic coordinate
/// descent on the scikit-learn objective
/// `1/(2n) ||y - Xw||² + alpha * l1_ratio * ||w||₁
///  + alpha * (1 - l1_ratio)/2 * ||w||²`.
#[derive(Debug, Clone)]
pub struct ElasticNet {
    /// Overall penalty strength.
    pub alpha: f64,
    /// Mix between L1 (1.0) and L2 (0.0).
    pub l1_ratio: f64,
    /// Maximum coordinate-descent sweeps.
    pub max_iter: usize,
    /// Convergence tolerance on the largest coefficient change per sweep.
    pub tol: f64,
    weights: Option<Vec<f64>>,
    x_mean: Vec<f64>,
    y_mean: f64,
}

impl ElasticNet {
    /// Elastic net with the given penalty and mix.
    ///
    /// # Panics
    ///
    /// Panics unless `alpha >= 0` and `0 <= l1_ratio <= 1`.
    pub fn new(alpha: f64, l1_ratio: f64) -> Self {
        assert!(alpha >= 0.0, "alpha must be non-negative");
        assert!((0.0..=1.0).contains(&l1_ratio), "l1_ratio in [0, 1]");
        ElasticNet {
            alpha,
            l1_ratio,
            max_iter: 1000,
            tol: 1e-8,
            weights: None,
            x_mean: Vec::new(),
            y_mean: 0.0,
        }
    }

    /// The fitted coefficients.
    pub fn coefficients(&self) -> Option<&[f64]> {
        self.weights.as_deref()
    }

    pub(crate) fn fit_impl(&mut self, x: &Matrix, y: &[f64]) -> Result<(), RegressError> {
        let (xc, yc, xm, ym) = center(x, y);
        let n = xc.rows();
        let p = xc.cols();
        let nf = n as f64;
        // Column norms (1/n) x_j . x_j.
        let col_sq: Vec<f64> = (0..p)
            .map(|j| (0..n).map(|r| xc.get(r, j) * xc.get(r, j)).sum::<f64>() / nf)
            .collect();
        let l1 = self.alpha * self.l1_ratio;
        let l2 = self.alpha * (1.0 - self.l1_ratio);

        let mut w = vec![0.0; p];
        let mut residual = yc.clone(); // r = y - Xw, starts at y since w = 0
        for _ in 0..self.max_iter {
            let mut max_delta = 0.0f64;
            for j in 0..p {
                if col_sq[j] == 0.0 {
                    continue; // constant column after centering
                }
                // rho = (1/n) x_j . (r + x_j w_j)
                let mut rho = 0.0;
                for (r, &res) in residual.iter().enumerate() {
                    rho += xc.get(r, j) * (res + xc.get(r, j) * w[j]);
                }
                rho /= nf;
                let new_w = soft_threshold(rho, l1) / (col_sq[j] + l2);
                let delta = new_w - w[j];
                if delta != 0.0 {
                    for (r, res) in residual.iter_mut().enumerate() {
                        *res -= xc.get(r, j) * delta;
                    }
                    w[j] = new_w;
                    max_delta = max_delta.max(delta.abs());
                }
            }
            if max_delta < self.tol {
                break;
            }
        }
        self.weights = Some(w);
        self.x_mean = xm;
        self.y_mean = ym;
        Ok(())
    }
}

fn soft_threshold(x: f64, t: f64) -> f64 {
    if x > t {
        x - t
    } else if x < -t {
        x + t
    } else {
        0.0
    }
}

impl Regressor for ElasticNet {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), RegressError> {
        self.fit_impl(x, y)
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        let w = self.weights.as_ref().expect("fit before predict");
        predict_centered(x, w, &self.x_mean, self.y_mean)
    }

    fn name(&self) -> String {
        "EN".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::mse;

    #[test]
    fn soft_threshold_cases() {
        assert_eq!(soft_threshold(3.0, 1.0), 2.0);
        assert_eq!(soft_threshold(-3.0, 1.0), -2.0);
        assert_eq!(soft_threshold(0.5, 1.0), 0.0);
    }

    #[test]
    fn tiny_penalty_recovers_ols() {
        let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0]]);
        let y = [1.0, 3.0, 5.0, 7.0];
        let mut en = ElasticNet::new(1e-8, 0.5);
        en.fit(&x, &y).unwrap();
        assert!(mse(&en.predict(&x), &y) < 1e-8);
    }

    #[test]
    fn huge_l1_zeroes_everything() {
        let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0]]);
        let y = [1.0, 3.0, 5.0, 7.0];
        let mut en = ElasticNet::new(1e4, 1.0);
        en.fit(&x, &y).unwrap();
        assert_eq!(en.coefficients().unwrap(), &[0.0]);
        // Falls back to mean prediction.
        assert!((en.predict(&x)[0] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn l1_produces_sparsity_on_irrelevant_features() {
        // Feature 1 is pure noise; LASSO-like EN should zero it out.
        let n = 40;
        let x = Matrix::from_fn(n, 2, |r, c| {
            if c == 0 {
                r as f64 / n as f64
            } else {
                ((r * 17) % 7) as f64 / 7.0 - 0.5
            }
        });
        let y: Vec<f64> = (0..n).map(|r| 3.0 * (r as f64 / n as f64)).collect();
        let mut en = ElasticNet::new(0.05, 1.0);
        en.fit(&x, &y).unwrap();
        let w = en.coefficients().unwrap();
        assert!(w[0] > 1.0, "relevant weight {w:?}");
        assert!(w[1].abs() < 0.05, "noise weight {w:?}");
    }
}
