use crate::elastic_net::ElasticNet;
use crate::traits::{RegressError, Regressor};
use tensor::Matrix;

/// LASSO (Tibshirani): L1-penalized least squares, i.e. an
/// [`ElasticNet`] with `l1_ratio = 1`.
#[derive(Debug, Clone)]
pub struct Lasso {
    inner: ElasticNet,
}

impl Lasso {
    /// LASSO with penalty `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha < 0`.
    pub fn new(alpha: f64) -> Self {
        Lasso {
            inner: ElasticNet::new(alpha, 1.0),
        }
    }

    /// The fitted coefficients.
    pub fn coefficients(&self) -> Option<&[f64]> {
        self.inner.coefficients()
    }
}

impl Regressor for Lasso {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), RegressError> {
        self.inner.fit(x, y)
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        self.inner.predict(x)
    }

    fn name(&self) -> String {
        "LASSO".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::mse;

    #[test]
    fn lasso_fits_sparse_truth() {
        // y depends on features 0 and 2 only.
        let n = 50;
        let x = Matrix::from_fn(n, 4, |r, c| (((r + 1) * (c + 3)) % 13) as f64 / 13.0);
        let y: Vec<f64> = (0..n)
            .map(|r| 2.0 * x.get(r, 0) - 1.5 * x.get(r, 2))
            .collect();
        let mut lasso = Lasso::new(1e-4);
        lasso.fit(&x, &y).unwrap();
        assert!(mse(&lasso.predict(&x), &y) < 1e-3);
    }

    #[test]
    fn name_is_table_label() {
        assert_eq!(Lasso::new(0.1).name(), "LASSO");
    }
}
