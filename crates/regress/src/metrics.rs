//! Regression quality metrics and correlation coefficients.

/// Mean squared error.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn mse(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "length mismatch");
    assert!(!pred.is_empty(), "empty inputs");
    pred.iter()
        .zip(truth)
        .map(|(&p, &t)| (p - t) * (p - t))
        .sum::<f64>()
        / pred.len() as f64
}

/// Mean absolute error.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn mae(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "length mismatch");
    assert!(!pred.is_empty(), "empty inputs");
    pred.iter()
        .zip(truth)
        .map(|(&p, &t)| (p - t).abs())
        .sum::<f64>()
        / pred.len() as f64
}

/// Coefficient of determination R². 1.0 is perfect; 0.0 matches the mean
/// predictor; negative is worse than the mean predictor.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn r2(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "length mismatch");
    assert!(!pred.is_empty(), "empty inputs");
    let mean = truth.iter().sum::<f64>() / truth.len() as f64;
    let ss_res: f64 = pred
        .iter()
        .zip(truth)
        .map(|(&p, &t)| (t - p) * (t - p))
        .sum();
    let ss_tot: f64 = truth.iter().map(|&t| (t - mean) * (t - mean)).sum();
    if ss_tot == 0.0 {
        return if ss_res == 0.0 { 1.0 } else { 0.0 };
    }
    1.0 - ss_res / ss_tot
}

/// Pearson correlation coefficient, or 0.0 when either side is constant.
///
/// Returns NaN if either input contains a non-finite value (a diverged
/// model's predictions, say) — callers render that as "n/a" rather than
/// aborting mid-report.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    assert!(!a.is_empty(), "empty inputs");
    if has_non_finite(a) || has_non_finite(b) {
        return f64::NAN;
    }
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va == 0.0 || vb == 0.0 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

/// Spearman rank correlation (Pearson on average-ranked data).
///
/// Returns NaN if either input contains a non-finite value: NaN has no
/// rank, so the coefficient is undefined. (The previous behaviour was a
/// panic inside the rank sort, which aborted whole report binaries when a
/// diverged model's predictions reached them.)
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn spearman(a: &[f64], b: &[f64]) -> f64 {
    if has_non_finite(a) || has_non_finite(b) {
        return f64::NAN;
    }
    pearson(&ranks(a), &ranks(b))
}

fn has_non_finite(values: &[f64]) -> bool {
    values.iter().any(|v| !v.is_finite())
}

/// Average ranks (1-based), ties receive the mean of their rank range.
/// Callers must filter non-finite values first — see [`spearman`].
fn ranks(values: &[f64]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by(|&i, &j| {
        values[i]
            .partial_cmp(&values[j])
            .expect("non-finite values are rejected before ranking")
    });
    let mut out = vec![0.0; values.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && values[order[j + 1]] == values[order[i]] {
            j += 1;
        }
        let rank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            out[idx] = rank;
        }
        i = j + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_mae_known_values() {
        let pred = [1.0, 2.0, 3.0];
        let truth = [1.0, 4.0, 1.0];
        assert!((mse(&pred, &truth) - (0.0 + 4.0 + 4.0) / 3.0).abs() < 1e-12);
        assert!((mae(&pred, &truth) - (0.0 + 2.0 + 2.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn r2_bounds() {
        let truth = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(r2(&truth, &truth), 1.0);
        let mean_pred = [2.5; 4];
        assert!(r2(&mean_pred, &truth).abs() < 1e-12);
    }

    #[test]
    fn pearson_perfect_and_inverse() {
        let a = [1.0, 2.0, 3.0];
        let b = [2.0, 4.0, 6.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
        let c = [3.0, 2.0, 1.0];
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&a, &[5.0; 3]), 0.0);
    }

    #[test]
    fn spearman_is_rank_based() {
        // Monotone but non-linear: Spearman 1, Pearson < 1.
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [1.0, 10.0, 100.0, 1000.0];
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-12);
        assert!(pearson(&a, &b) < 0.95);
    }

    #[test]
    fn spearman_handles_ties() {
        let a = [1.0, 1.0, 2.0, 3.0];
        let b = [1.0, 1.0, 2.0, 3.0];
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-12);
        assert_eq!(ranks(&[5.0, 5.0]), vec![1.5, 1.5]);
    }

    #[test]
    fn correlations_return_nan_instead_of_panicking_on_non_finite() {
        // A diverged model emits NaN/inf predictions; the coefficients must
        // report "undefined", not abort the whole report binary.
        let good = [1.0, 2.0, 3.0];
        for poison in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let bad = [1.0, poison, 3.0];
            assert!(spearman(&bad, &good).is_nan());
            assert!(spearman(&good, &bad).is_nan());
            assert!(pearson(&bad, &good).is_nan());
            assert!(pearson(&good, &bad).is_nan());
        }
        // Finite inputs are unaffected.
        assert!((spearman(&good, &good) - 1.0).abs() < 1e-12);
        assert!((pearson(&good, &good) - 1.0).abs() < 1e-12);
    }
}
