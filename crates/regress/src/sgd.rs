use crate::traits::{RegressError, Regressor};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use tensor::Matrix;

/// Linear regression fitted by stochastic gradient descent on squared loss
/// with inverse-scaling learning rate — the `SGD` baseline of Tables I/II.
///
/// Deliberately scikit-learn-faithful: there is **no internal feature
/// scaling**, so on raw sum-aggregated circuit features the iterates diverge
/// to astronomic values exactly as the paper reports (`2.1e+25` MSE).
#[derive(Debug, Clone)]
pub struct SgdRegressor {
    /// Initial learning rate.
    pub eta0: f64,
    /// Inverse-scaling exponent: `eta = eta0 / t^power_t`.
    pub power_t: f64,
    /// Number of passes over the data.
    pub epochs: usize,
    /// Shuffle seed.
    pub seed: u64,
    weights: Option<Vec<f64>>,
    intercept: f64,
}

impl Default for SgdRegressor {
    fn default() -> Self {
        SgdRegressor {
            eta0: 0.01,
            power_t: 0.25,
            epochs: 50,
            seed: 0,
            weights: None,
            intercept: 0.0,
        }
    }
}

impl SgdRegressor {
    /// An SGD regressor with scikit-learn-like defaults.
    pub fn new() -> Self {
        SgdRegressor::default()
    }

    /// The fitted coefficients.
    pub fn coefficients(&self) -> Option<&[f64]> {
        self.weights.as_deref()
    }
}

impl Regressor for SgdRegressor {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), RegressError> {
        let n = x.rows();
        let p = x.cols();
        let mut w = vec![0.0; p];
        let mut b = 0.0f64;
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut t = 1u64;
        for _ in 0..self.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                let row = x.row(i);
                let pred: f64 = row.iter().zip(&w).map(|(&a, &b)| a * b).sum::<f64>() + b;
                let err = pred - y[i];
                let eta = self.eta0 / (t as f64).powf(self.power_t);
                // Divergence guard: clamp the iterates so the huge values
                // (the observable behaviour on unscaled data) stay finite
                // instead of overflowing into NaN.
                const CAP: f64 = 1e75;
                for (wj, &xj) in w.iter_mut().zip(row) {
                    *wj = (*wj - eta * err * xj).clamp(-CAP, CAP);
                }
                b = (b - eta * err).clamp(-CAP, CAP);
                t += 1;
            }
        }
        self.weights = Some(w);
        self.intercept = b;
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        let w = self.weights.as_ref().expect("fit before predict");
        (0..x.rows())
            .map(|r| x.row(r).iter().zip(w).map(|(&a, &b)| a * b).sum::<f64>() + self.intercept)
            .collect()
    }

    fn name(&self) -> String {
        "SGD".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::mse;

    #[test]
    fn fits_scaled_data() {
        let x = Matrix::from_fn(40, 2, |r, c| ((r * (c + 2)) % 9) as f64 / 9.0 - 0.5);
        let y: Vec<f64> = (0..40)
            .map(|r| 1.5 * x.get(r, 0) - 0.5 * x.get(r, 1) + 0.25)
            .collect();
        let mut sgd = SgdRegressor {
            epochs: 800,
            eta0: 0.05,
            ..SgdRegressor::default()
        };
        sgd.fit(&x, &y).unwrap();
        assert!(mse(&sgd.predict(&x), &y) < 1e-2);
    }

    #[test]
    fn diverges_on_huge_unscaled_features_without_nan() {
        // Mimics the paper's sum-aggregated inputs: feature magnitude ~1e3.
        let x = Matrix::from_fn(20, 2, |r, c| ((r + c) as f64) * 1.0e3);
        let y: Vec<f64> = (0..20).map(|r| r as f64).collect();
        let mut sgd = SgdRegressor::default();
        sgd.fit(&x, &y).unwrap();
        let pred = sgd.predict(&x);
        assert!(pred.iter().all(|p| p.is_finite()));
        // The fit blows up instead of converging.
        assert!(mse(&pred, &y) > 1e6);
    }

    #[test]
    fn deterministic_per_seed() {
        let x = Matrix::from_fn(10, 1, |r, _| r as f64 / 10.0);
        let y: Vec<f64> = (0..10).map(|r| r as f64).collect();
        let mut a = SgdRegressor::default();
        let mut b = SgdRegressor::default();
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        assert_eq!(a.coefficients(), b.coefficients());
    }
}
