use crate::internal::{center, predict_centered};
use crate::traits::{RegressError, Regressor};
use tensor::linalg::solve;
use tensor::Matrix;

/// Least-angle regression (Efron, Hastie, Johnstone, Tibshirani 2004).
///
/// Features are centered and unit-normalized internally; coefficients move
/// along the equiangular direction of the active set until a new feature
/// ties in correlation, exactly as in the published algorithm.
#[derive(Debug, Clone)]
pub struct Lars {
    /// Maximum number of active features; `None` = all.
    pub max_features: Option<usize>,
    weights: Option<Vec<f64>>,
    x_mean: Vec<f64>,
    y_mean: f64,
}

impl Lars {
    /// LARS limited to `max_features` steps (or unlimited).
    pub fn new(max_features: Option<usize>) -> Self {
        Lars {
            max_features,
            weights: None,
            x_mean: Vec::new(),
            y_mean: 0.0,
        }
    }

    /// The fitted coefficients.
    pub fn coefficients(&self) -> Option<&[f64]> {
        self.weights.as_deref()
    }
}

impl Regressor for Lars {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), RegressError> {
        let (xc, yc, xm, ym) = center(x, y);
        let n = xc.rows();
        let p = xc.cols();
        if n == 0 || p == 0 {
            return Err(RegressError::Degenerate("empty design matrix".into()));
        }
        // Unit-normalize columns; remember norms to unscale at the end.
        let norms: Vec<f64> = (0..p)
            .map(|j| {
                (0..n)
                    .map(|r| xc.get(r, j) * xc.get(r, j))
                    .sum::<f64>()
                    .sqrt()
            })
            .collect();
        let xn = Matrix::from_fn(n, p, |r, c| {
            if norms[c] > 1e-12 {
                xc.get(r, c) / norms[c]
            } else {
                0.0
            }
        });

        let budget = self
            .max_features
            .unwrap_or(p)
            .min(p)
            .min(n.saturating_sub(1).max(1));
        let mut beta = vec![0.0f64; p]; // on the normalized scale
        let mut mu = vec![0.0f64; n];
        let mut active: Vec<usize> = Vec::new();

        for _step in 0..budget {
            // Correlations with the current residual.
            let corr: Vec<f64> = (0..p)
                .map(|j| (0..n).map(|r| xn.get(r, j) * (yc[r] - mu[r])).sum())
                .collect();
            let c_max = active
                .iter()
                .map(|&j| corr[j].abs())
                .fold(0.0f64, f64::max)
                .max(
                    (0..p)
                        .filter(|j| !active.contains(j))
                        .map(|j| corr[j].abs())
                        .fold(0.0, f64::max),
                );
            if c_max < 1e-10 {
                break;
            }
            // Add the (first) most-correlated inactive feature.
            if let Some(j_new) = (0..p)
                .filter(|j| !active.contains(j) && norms[*j] > 1e-12)
                .max_by(|&a, &b| corr[a].abs().partial_cmp(&corr[b].abs()).expect("no NaN"))
            {
                if (corr[j_new].abs() - c_max).abs() < 1e-9 || active.is_empty() {
                    active.push(j_new);
                }
            }
            if active.is_empty() {
                break;
            }
            let k = active.len();
            let signs: Vec<f64> = active.iter().map(|&j| corr[j].signum()).collect();
            // G = S X_A^T X_A S  (signed Gram), w = A_norm * G^{-1} 1.
            let g = Matrix::from_fn(k, k, |a, b| {
                let (ja, jb) = (active[a], active[b]);
                signs[a] * signs[b] * (0..n).map(|r| xn.get(r, ja) * xn.get(r, jb)).sum::<f64>()
            });
            let ones = vec![1.0; k];
            let ginv_one = solve(&g, &ones)
                .map_err(|_| RegressError::Degenerate("collinear active set in LARS".into()))?;
            let a_norm = 1.0 / ginv_one.iter().sum::<f64>().max(1e-12).sqrt();
            let w: Vec<f64> = ginv_one.iter().map(|&v| v * a_norm).collect();
            // Equiangular direction u = X_A S w, and a_j = x_j . u.
            let mut u = vec![0.0f64; n];
            for (pos, &j) in active.iter().enumerate() {
                for (r, uv) in u.iter_mut().enumerate() {
                    *uv += signs[pos] * w[pos] * xn.get(r, j);
                }
            }
            let a: Vec<f64> = (0..p)
                .map(|j| (0..n).map(|r| xn.get(r, j) * u[r]).sum())
                .collect();
            // Step length: smallest positive gamma where an inactive feature ties.
            let mut gamma = c_max / a_norm; // full step (OLS on active set)
            if active.len() < p {
                for j in 0..p {
                    if active.contains(&j) || norms[j] <= 1e-12 {
                        continue;
                    }
                    for cand in [
                        (c_max - corr[j]) / (a_norm - a[j]),
                        (c_max + corr[j]) / (a_norm + a[j]),
                    ] {
                        if cand > 1e-12 && cand < gamma {
                            gamma = cand;
                        }
                    }
                }
            }
            for (pos, &j) in active.iter().enumerate() {
                beta[j] += gamma * signs[pos] * w[pos];
            }
            for (r, m) in mu.iter_mut().enumerate() {
                *m += gamma * u[r];
            }
        }

        // Unscale back to the original feature scale.
        let weights: Vec<f64> = (0..p)
            .map(|j| {
                if norms[j] > 1e-12 {
                    beta[j] / norms[j]
                } else {
                    0.0
                }
            })
            .collect();
        self.weights = Some(weights);
        self.x_mean = xm;
        self.y_mean = ym;
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        let w = self.weights.as_ref().expect("fit before predict");
        predict_centered(x, w, &self.x_mean, self.y_mean)
    }

    fn name(&self) -> String {
        "LARS".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::mse;

    #[test]
    fn full_path_reaches_ols_on_well_posed_data() {
        let n = 50;
        let x = Matrix::from_fn(n, 3, |r, c| (((r + 3) * (2 * c + 5)) % 19) as f64 / 19.0);
        let y: Vec<f64> = (0..n)
            .map(|r| 1.0 * x.get(r, 0) - 2.0 * x.get(r, 1) + 0.5 * x.get(r, 2) + 1.0)
            .collect();
        let mut lars = Lars::new(None);
        lars.fit(&x, &y).unwrap();
        assert!(
            mse(&lars.predict(&x), &y) < 1e-6,
            "mse {}",
            mse(&lars.predict(&x), &y)
        );
    }

    #[test]
    fn single_feature_problem() {
        let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0]]);
        let y = [0.0, 2.0, 4.0, 6.0];
        let mut lars = Lars::new(None);
        lars.fit(&x, &y).unwrap();
        assert!((lars.coefficients().unwrap()[0] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn max_features_limits_path() {
        let n = 30;
        let x = Matrix::from_fn(n, 5, |r, c| (((r + 1) * (c + 2)) % 13) as f64 / 13.0);
        let y: Vec<f64> = (0..n).map(|r| x.get(r, 0) * 3.0).collect();
        let mut lars = Lars::new(Some(1));
        lars.fit(&x, &y).unwrap();
        let nonzero = lars
            .coefficients()
            .unwrap()
            .iter()
            .filter(|&&w| w.abs() > 1e-9)
            .count();
        assert_eq!(nonzero, 1);
    }
}
