use crate::traits::{RegressError, Regressor};
use tensor::Matrix;

/// Kernel functions for [`Svr`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Kernel {
    /// Gaussian radial basis function `exp(-gamma ||a - b||²)`.
    Rbf {
        /// Width parameter.
        gamma: f64,
    },
    /// Polynomial `(gamma a.b + coef0)^degree`.
    Poly {
        /// Polynomial degree.
        degree: u32,
        /// Inner-product scale.
        gamma: f64,
        /// Additive constant.
        coef0: f64,
    },
}

impl Kernel {
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        match *self {
            Kernel::Rbf { gamma } => {
                let d2: f64 = a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum();
                (-gamma * d2).exp()
            }
            Kernel::Poly {
                degree,
                gamma,
                coef0,
            } => {
                let dot: f64 = a.iter().zip(b).map(|(&x, &y)| x * y).sum();
                (gamma * dot + coef0).powi(degree as i32)
            }
        }
    }
}

/// ε-insensitive support vector regression (Smola & Schölkopf) solved by
/// coordinate descent on the dual.
///
/// The bias is absorbed by training on the augmented kernel `K + 1`, which
/// removes the equality constraint from the dual, leaving the box-constrained
/// problem each coordinate of which has the closed-form soft-threshold
/// update used below.
#[derive(Debug, Clone)]
pub struct Svr {
    /// Kernel function.
    pub kernel: Kernel,
    /// Box constraint (regularization strength).
    pub c: f64,
    /// Width of the ε-insensitive tube.
    pub epsilon: f64,
    /// Maximum coordinate sweeps.
    pub max_iter: usize,
    /// Convergence tolerance on the largest dual update per sweep.
    pub tol: f64,
    beta: Option<Vec<f64>>,
    support: Matrix,
}

impl Svr {
    /// An SVR with the given kernel, box constraint, and tube width.
    ///
    /// # Panics
    ///
    /// Panics unless `c > 0` and `epsilon >= 0`.
    pub fn new(kernel: Kernel, c: f64, epsilon: f64) -> Self {
        assert!(c > 0.0, "C must be positive");
        assert!(epsilon >= 0.0, "epsilon must be non-negative");
        Svr {
            kernel,
            c,
            epsilon,
            max_iter: 200,
            tol: 1e-6,
            beta: None,
            support: Matrix::zeros(0, 0),
        }
    }

    /// Number of support vectors (nonzero dual coefficients).
    pub fn num_support_vectors(&self) -> usize {
        self.beta
            .as_ref()
            .map_or(0, |b| b.iter().filter(|&&v| v != 0.0).count())
    }
}

impl Regressor for Svr {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), RegressError> {
        let n = x.rows();
        if n == 0 {
            return Err(RegressError::Degenerate("no samples".into()));
        }
        // Augmented Gram matrix K + 1 (bias absorbed).
        let mut k = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                let v = self.kernel.eval(x.row(i), x.row(j)) + 1.0;
                k.set(i, j, v);
                k.set(j, i, v);
            }
        }
        let mut beta = vec![0.0f64; n];
        let mut f = vec![0.0f64; n]; // f_i = (K beta)_i
        for _ in 0..self.max_iter {
            let mut max_delta = 0.0f64;
            for i in 0..n {
                let kii = k.get(i, i).max(1e-12);
                // Contribution of all other coordinates at sample i.
                let others = f[i] - kii * beta[i];
                let target = y[i] - others;
                // Minimize 0.5*kii*b^2 - target*b + eps*|b| over [-C, C].
                let raw = soft(target, self.epsilon) / kii;
                let new_beta = raw.clamp(-self.c, self.c);
                let delta = new_beta - beta[i];
                if delta != 0.0 {
                    for (j, fj) in f.iter_mut().enumerate() {
                        *fj += k.get(j, i) * delta;
                    }
                    beta[i] = new_beta;
                    max_delta = max_delta.max(delta.abs());
                }
            }
            if max_delta < self.tol {
                break;
            }
        }
        self.beta = Some(beta);
        self.support = x.clone();
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        let beta = self.beta.as_ref().expect("fit before predict");
        (0..x.rows())
            .map(|r| {
                beta.iter()
                    .enumerate()
                    .filter(|(_, &b)| b != 0.0)
                    .map(|(i, &b)| b * (self.kernel.eval(self.support.row(i), x.row(r)) + 1.0))
                    .sum()
            })
            .collect()
    }

    fn name(&self) -> String {
        match self.kernel {
            Kernel::Rbf { .. } => "SVR RBF".to_owned(),
            Kernel::Poly { .. } => "SVR Poly".to_owned(),
        }
    }
}

fn soft(x: f64, t: f64) -> f64 {
    if x > t {
        x - t
    } else if x < -t {
        x + t
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::mse;

    fn wave_problem() -> (Matrix, Vec<f64>) {
        let n = 60;
        let x = Matrix::from_fn(n, 1, |r, _| r as f64 / n as f64 * 4.0 - 2.0);
        let y: Vec<f64> = (0..n).map(|r| (x.get(r, 0) * 2.0).sin()).collect();
        (x, y)
    }

    #[test]
    fn rbf_fits_nonlinear_function() {
        let (x, y) = wave_problem();
        let mut svr = Svr::new(Kernel::Rbf { gamma: 4.0 }, 100.0, 0.01);
        svr.fit(&x, &y).unwrap();
        let err = mse(&svr.predict(&x), &y);
        assert!(err < 0.01, "RBF SVR mse {err}");
        assert!(svr.num_support_vectors() > 0);
    }

    #[test]
    fn poly_fits_quadratic() {
        let n = 40;
        let x = Matrix::from_fn(n, 1, |r, _| r as f64 / n as f64 * 2.0 - 1.0);
        let y: Vec<f64> = (0..n).map(|r| x.get(r, 0).powi(2)).collect();
        let mut svr = Svr::new(
            Kernel::Poly {
                degree: 2,
                gamma: 1.0,
                coef0: 1.0,
            },
            100.0,
            0.005,
        );
        svr.fit(&x, &y).unwrap();
        let err = mse(&svr.predict(&x), &y);
        assert!(err < 0.01, "poly SVR mse {err}");
    }

    #[test]
    fn epsilon_tube_controls_sparsity() {
        let (x, y) = wave_problem();
        let mut tight = Svr::new(Kernel::Rbf { gamma: 4.0 }, 100.0, 0.001);
        let mut loose = Svr::new(Kernel::Rbf { gamma: 4.0 }, 100.0, 0.5);
        tight.fit(&x, &y).unwrap();
        loose.fit(&x, &y).unwrap();
        assert!(tight.num_support_vectors() > loose.num_support_vectors());
    }

    #[test]
    fn kernels_evaluate_known_values() {
        let rbf = Kernel::Rbf { gamma: 1.0 };
        assert!((rbf.eval(&[0.0], &[0.0]) - 1.0).abs() < 1e-12);
        assert!((rbf.eval(&[0.0], &[1.0]) - (-1.0f64).exp()).abs() < 1e-12);
        let poly = Kernel::Poly {
            degree: 2,
            gamma: 1.0,
            coef0: 1.0,
        };
        assert!((poly.eval(&[1.0, 2.0], &[3.0, 4.0]) - 144.0).abs() < 1e-12);
    }

    #[test]
    fn empty_fit_is_degenerate() {
        let mut svr = Svr::new(Kernel::Rbf { gamma: 1.0 }, 1.0, 0.1);
        assert!(matches!(
            svr.fit(&Matrix::zeros(0, 2), &[]),
            Err(RegressError::Degenerate(_))
        ));
    }
}
