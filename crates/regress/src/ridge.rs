use crate::internal::{center, predict_centered};
use crate::traits::{RegressError, Regressor};
use tensor::linalg::lstsq;
use tensor::Matrix;

/// Ridge regression (L2-penalized least squares) with unpenalized intercept.
#[derive(Debug, Clone)]
pub struct Ridge {
    /// L2 penalty strength.
    pub alpha: f64,
    weights: Option<Vec<f64>>,
    x_mean: Vec<f64>,
    y_mean: f64,
}

impl Ridge {
    /// Ridge with penalty `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha < 0`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha >= 0.0, "alpha must be non-negative");
        Ridge {
            alpha,
            weights: None,
            x_mean: Vec::new(),
            y_mean: 0.0,
        }
    }

    /// The fitted coefficients.
    pub fn coefficients(&self) -> Option<&[f64]> {
        self.weights.as_deref()
    }
}

impl Regressor for Ridge {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), RegressError> {
        let (xc, yc, xm, ym) = center(x, y);
        let w = lstsq(&xc, &yc, self.alpha.max(1e-12))?;
        self.weights = Some(w);
        self.x_mean = xm;
        self.y_mean = ym;
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        let w = self.weights.as_ref().expect("fit before predict");
        predict_centered(x, w, &self.x_mean, self.y_mean)
    }

    fn name(&self) -> String {
        "RR".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn large_alpha_shrinks_weights() {
        let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0]]);
        let y = [0.0, 2.0, 4.0, 6.0];
        let mut small = Ridge::new(1e-8);
        let mut big = Ridge::new(1e4);
        small.fit(&x, &y).unwrap();
        big.fit(&x, &y).unwrap();
        let ws = small.coefficients().unwrap()[0];
        let wb = big.coefficients().unwrap()[0];
        assert!(ws > 1.9, "small-alpha weight {ws}");
        assert!(wb < 0.1, "big-alpha weight {wb}");
        // Even fully shrunk, prediction falls back to the mean.
        assert!((big.predict(&x)[0] - 3.0).abs() < 0.1);
    }

    #[test]
    fn ridge_survives_collinear_features() {
        // Two identical columns are singular for OLS; ridge handles them.
        let x = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]);
        let y = [2.0, 4.0, 6.0];
        let mut rr = Ridge::new(0.1);
        rr.fit(&x, &y).unwrap();
        let pred = rr.predict(&x);
        assert!(crate::metrics::mse(&pred, &y) < 0.5);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_alpha_panics() {
        let _ = Ridge::new(-1.0);
    }
}
