use crate::traits::{RegressError, Regressor};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use tensor::Matrix;

/// Passive-aggressive regression (PA-I, Crammer et al.) with the
/// ε-insensitive loss — the `PAR` baseline of Table II.
///
/// Each sample with loss `max(0, |w.x - y| - epsilon)` triggers the update
/// `w += sign(y - w.x) * min(C, loss / ||x||²) * x`.
#[derive(Debug, Clone)]
pub struct PassiveAggressive {
    /// Aggressiveness cap.
    pub c: f64,
    /// Insensitivity tube width.
    pub epsilon: f64,
    /// Passes over the data.
    pub epochs: usize,
    /// Shuffle seed.
    pub seed: u64,
    weights: Option<Vec<f64>>,
    intercept: f64,
}

impl Default for PassiveAggressive {
    fn default() -> Self {
        PassiveAggressive {
            c: 1.0,
            epsilon: 0.1,
            epochs: 30,
            seed: 0,
            weights: None,
            intercept: 0.0,
        }
    }
}

impl PassiveAggressive {
    /// A PA-I regressor with library defaults.
    pub fn new() -> Self {
        PassiveAggressive::default()
    }
}

impl Regressor for PassiveAggressive {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), RegressError> {
        let n = x.rows();
        let p = x.cols();
        let mut w = vec![0.0f64; p];
        let mut b = 0.0f64;
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = StdRng::seed_from_u64(self.seed);
        for _ in 0..self.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                let row = x.row(i);
                let pred: f64 = row.iter().zip(&w).map(|(&a, &c)| a * c).sum::<f64>() + b;
                let err = y[i] - pred;
                let loss = err.abs() - self.epsilon;
                if loss <= 0.0 {
                    continue; // passive
                }
                let norm2: f64 = row.iter().map(|&v| v * v).sum::<f64>() + 1.0; // +1 for bias
                let tau = (loss / norm2).min(self.c) * err.signum();
                for (wj, &xj) in w.iter_mut().zip(row) {
                    *wj += tau * xj;
                }
                b += tau;
            }
        }
        self.weights = Some(w);
        self.intercept = b;
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        let w = self.weights.as_ref().expect("fit before predict");
        (0..x.rows())
            .map(|r| x.row(r).iter().zip(w).map(|(&a, &b)| a * b).sum::<f64>() + self.intercept)
            .collect()
    }

    fn name(&self) -> String {
        "PAR".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::mse;

    #[test]
    fn fits_linear_data_within_tube() {
        let n = 50;
        let x = Matrix::from_fn(n, 2, |r, c| ((r * (c + 3)) % 13) as f64 / 13.0);
        let y: Vec<f64> = (0..n)
            .map(|r| 2.0 * x.get(r, 0) - x.get(r, 1) + 0.5)
            .collect();
        let mut par = PassiveAggressive {
            epochs: 200,
            epsilon: 0.01,
            ..PassiveAggressive::default()
        };
        par.fit(&x, &y).unwrap();
        assert!(mse(&par.predict(&x), &y) < 0.01);
    }

    #[test]
    fn wide_tube_means_no_updates() {
        let x = Matrix::from_rows(&[&[1.0], &[2.0]]);
        let y = [0.05, -0.05];
        let mut par = PassiveAggressive {
            epsilon: 10.0,
            ..PassiveAggressive::default()
        };
        par.fit(&x, &y).unwrap();
        assert_eq!(par.predict(&x), vec![0.0, 0.0]);
    }
}
