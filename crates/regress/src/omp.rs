use crate::internal::{center, predict_centered};
use crate::traits::{RegressError, Regressor};
use tensor::linalg::lstsq;
use tensor::Matrix;

/// Orthogonal matching pursuit (Mallat & Zhang): greedily adds the feature
/// most correlated with the residual, refitting least squares on the active
/// set after each addition.
#[derive(Debug, Clone)]
pub struct OrthogonalMatchingPursuit {
    /// Number of nonzero coefficients to select; `None` uses
    /// `max(1, n_features / 10)` like scikit-learn's default.
    pub n_nonzero: Option<usize>,
    weights: Option<Vec<f64>>,
    x_mean: Vec<f64>,
    y_mean: f64,
}

impl OrthogonalMatchingPursuit {
    /// OMP selecting `n_nonzero` features (or the scikit-learn default).
    pub fn new(n_nonzero: Option<usize>) -> Self {
        OrthogonalMatchingPursuit {
            n_nonzero,
            weights: None,
            x_mean: Vec::new(),
            y_mean: 0.0,
        }
    }

    /// Indices of the selected features.
    pub fn active_set(&self) -> Vec<usize> {
        self.weights
            .as_ref()
            .map(|w| {
                w.iter()
                    .enumerate()
                    .filter(|(_, &v)| v != 0.0)
                    .map(|(i, _)| i)
                    .collect()
            })
            .unwrap_or_default()
    }
}

impl Regressor for OrthogonalMatchingPursuit {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), RegressError> {
        let (xc, yc, xm, ym) = center(x, y);
        let p = xc.cols();
        let n = xc.rows();
        if p == 0 || n == 0 {
            return Err(RegressError::Degenerate("empty design matrix".into()));
        }
        let budget = self.n_nonzero.unwrap_or((p / 10).max(1)).min(p).min(n);

        let mut active: Vec<usize> = Vec::new();
        let mut residual = yc.clone();
        let mut w = vec![0.0; p];
        for _ in 0..budget {
            // Most-correlated inactive feature.
            let mut best = None;
            let mut best_corr = 0.0f64;
            for j in 0..p {
                if active.contains(&j) {
                    continue;
                }
                let corr: f64 = (0..n).map(|r| xc.get(r, j) * residual[r]).sum();
                if corr.abs() > best_corr {
                    best_corr = corr.abs();
                    best = Some(j);
                }
            }
            let Some(j) = best else { break };
            if best_corr < 1e-12 {
                break; // residual orthogonal to everything left
            }
            active.push(j);
            // Least-squares refit on the active set.
            let sub = Matrix::from_fn(n, active.len(), |r, c| xc.get(r, active[c]));
            let coef = lstsq(&sub, &yc, 1e-10)?;
            for (pos, &feat) in active.iter().enumerate() {
                w[feat] = coef[pos];
            }
            for (r, res) in residual.iter_mut().enumerate() {
                *res = yc[r]
                    - active
                        .iter()
                        .map(|&feat| xc.get(r, feat) * w[feat])
                        .sum::<f64>();
            }
        }
        self.weights = Some(w);
        self.x_mean = xm;
        self.y_mean = ym;
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        let w = self.weights.as_ref().expect("fit before predict");
        predict_centered(x, w, &self.x_mean, self.y_mean)
    }

    fn name(&self) -> String {
        "OMP".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::mse;

    #[test]
    fn selects_the_truly_active_features() {
        // y = 4 x2 - 2 x5 among 8 features.
        let n = 60;
        let x = Matrix::from_fn(n, 8, |r, c| (((r + 1) * (c * c + 1)) % 17) as f64 / 17.0);
        let y: Vec<f64> = (0..n)
            .map(|r| 4.0 * x.get(r, 2) - 2.0 * x.get(r, 5))
            .collect();
        let mut omp = OrthogonalMatchingPursuit::new(Some(2));
        omp.fit(&x, &y).unwrap();
        let mut active = omp.active_set();
        active.sort();
        assert_eq!(active, vec![2, 5]);
        assert!(mse(&omp.predict(&x), &y) < 1e-6);
    }

    #[test]
    fn budget_limits_selection() {
        let n = 30;
        let x = Matrix::from_fn(n, 6, |r, c| ((r * (c + 2)) % 11) as f64);
        let y: Vec<f64> = (0..n).map(|r| x.row(r).iter().sum::<f64>()).collect();
        let mut omp = OrthogonalMatchingPursuit::new(Some(3));
        omp.fit(&x, &y).unwrap();
        assert!(omp.active_set().len() <= 3);
    }

    #[test]
    fn default_budget_is_tenth_of_features() {
        let omp = OrthogonalMatchingPursuit::new(None);
        assert!(omp.n_nonzero.is_none());
        // Behavioural check: with 20 features the default selects 2.
        let n = 40;
        let x = Matrix::from_fn(n, 20, |r, c| (((r + 2) * (c + 3)) % 19) as f64 / 19.0);
        let y: Vec<f64> = (0..n).map(|r| x.get(r, 0) + x.get(r, 1)).collect();
        let mut omp = OrthogonalMatchingPursuit::new(None);
        omp.fit(&x, &y).unwrap();
        assert_eq!(omp.active_set().len(), 2);
    }
}
