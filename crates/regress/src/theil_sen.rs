use crate::traits::{RegressError, Regressor};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use tensor::linalg::lstsq;
use tensor::Matrix;

/// Theil-Sen estimator for multiple linear regression (Dang et al. 2008):
/// exact least-squares fits on many random minimal subsets, combined by the
/// coordinate-wise median. Robust to outliers, expensive on wide data.
#[derive(Debug, Clone)]
pub struct TheilSen {
    /// Number of random subsets to fit.
    pub n_subsets: usize,
    /// Sampling seed.
    pub seed: u64,
    weights: Option<Vec<f64>>,
    intercept: f64,
}

impl Default for TheilSen {
    fn default() -> Self {
        TheilSen {
            n_subsets: 300,
            seed: 0,
            weights: None,
            intercept: 0.0,
        }
    }
}

impl TheilSen {
    /// A Theil-Sen estimator with the default subset count.
    pub fn new() -> Self {
        TheilSen::default()
    }

    /// The fitted coefficients.
    pub fn coefficients(&self) -> Option<&[f64]> {
        self.weights.as_deref()
    }
}

impl Regressor for TheilSen {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), RegressError> {
        let n = x.rows();
        let p = x.cols();
        let subset = p + 1; // features + intercept
        if n < subset + 1 {
            // Mirrors the paper's Table II, where Theil-Sen is N/A on the
            // tiny dataset: not enough samples for minimal subsets.
            return Err(RegressError::Degenerate(format!(
                "Theil-Sen needs more than {subset} samples, got {n}"
            )));
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut indices: Vec<usize> = (0..n).collect();
        let mut estimates: Vec<Vec<f64>> = Vec::with_capacity(self.n_subsets);
        for _ in 0..self.n_subsets {
            indices.shuffle(&mut rng);
            let rows = &indices[..subset];
            // Design with an explicit intercept column.
            let sub = Matrix::from_fn(subset, p + 1, |r, c| {
                if c == 0 {
                    1.0
                } else {
                    x.get(rows[r], c - 1)
                }
            });
            let ys: Vec<f64> = rows.iter().map(|&r| y[r]).collect();
            if let Ok(coef) = lstsq(&sub, &ys, 1e-10) {
                if coef.iter().all(|v| v.is_finite()) {
                    estimates.push(coef);
                }
            }
        }
        if estimates.is_empty() {
            return Err(RegressError::Degenerate(
                "every Theil-Sen subset was singular".into(),
            ));
        }
        // Coordinate-wise median.
        let mut median_coef = vec![0.0; p + 1];
        for (j, m) in median_coef.iter_mut().enumerate() {
            let mut column: Vec<f64> = estimates.iter().map(|e| e[j]).collect();
            column.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
            *m = column[column.len() / 2];
        }
        self.intercept = median_coef[0];
        self.weights = Some(median_coef[1..].to_vec());
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        let w = self.weights.as_ref().expect("fit before predict");
        (0..x.rows())
            .map(|r| x.row(r).iter().zip(w).map(|(&a, &b)| a * b).sum::<f64>() + self.intercept)
            .collect()
    }

    fn name(&self) -> String {
        "Theil".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::mse;

    #[test]
    fn fits_clean_linear_data() {
        let n = 40;
        let x = Matrix::from_fn(n, 2, |r, c| (((r + 2) * (c + 5)) % 17) as f64 / 17.0);
        let y: Vec<f64> = (0..n)
            .map(|r| 3.0 * x.get(r, 0) - x.get(r, 1) + 2.0)
            .collect();
        let mut ts = TheilSen::default();
        ts.fit(&x, &y).unwrap();
        assert!(mse(&ts.predict(&x), &y) < 1e-6);
    }

    #[test]
    fn robust_to_gross_outliers() {
        let n = 60;
        let x = Matrix::from_fn(n, 1, |r, _| r as f64 / n as f64);
        let mut y: Vec<f64> = (0..n).map(|r| 2.0 * x.get(r, 0)).collect();
        // Corrupt 10% of targets grossly.
        for i in 0..6 {
            y[i * 10] = 1000.0;
        }
        let mut ts = TheilSen::default();
        ts.fit(&x, &y).unwrap();
        let w = ts.coefficients().unwrap()[0];
        assert!((w - 2.0).abs() < 0.3, "Theil-Sen slope {w}");

        // OLS, by contrast, is dragged far away.
        let mut lr = crate::LinearRegression::new();
        lr.fit(&x, &y).unwrap();
        assert!((lr.coefficients().unwrap()[0] - 2.0).abs() > 10.0);
    }

    #[test]
    fn too_few_samples_is_na() {
        // The Table II "N/A" case.
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let y = [1.0, 2.0];
        let mut ts = TheilSen::default();
        assert!(matches!(ts.fit(&x, &y), Err(RegressError::Degenerate(_))));
    }
}
